// Package scenario is the macro-benchmark driver: it replays a
// compressed Azure-like trace (internal/trace) against a live cluster —
// one control plane, N real data plane replicas sharing a durable async
// store, an optional relay tier, and a fleet of emulated workers — with
// a configurable load mix (sync invokes, durable async submissions,
// multi-function workflows through internal/workflow) and a declarative
// fault schedule (kill/revive a worker rack, a data plane replica, a
// relay; flip a versioned rollout) at trace-relative times. The driver
// buckets results into named phases and reports per-phase p50/p99
// latency, cold-start rate, RPS, and workflow success, plus global
// lost/stranded counts — the paper's §5.3 methodology (sustained trace,
// whole system) pointed at the failure injections of §5.4.
//
// The same trace-time compression as `experiments warmth` applies: one
// trace minute replays in one wall second by default, and every
// liveness window (autoscaler, heartbeats, health sweeps, membership)
// is compressed by the same spirit so the trace's temporal structure
// survives.
package scenario

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"dirigent/internal/controlplane"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/dataplane"
	"dirigent/internal/fleet"
	"dirigent/internal/frontend"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/telemetry"
	"dirigent/internal/trace"
	"dirigent/internal/transport"
	"dirigent/internal/versioning"
	"dirigent/internal/workflow"
)

// FaultKind names a fault target tier.
type FaultKind string

// Fault targets.
const (
	// FaultWorkerRack kills (or revives) a fraction of the worker fleet
	// at once — a correlated rack/AZ failure.
	FaultWorkerRack FaultKind = "worker-rack"
	// FaultDataPlane kills (or revives) one data plane replica.
	FaultDataPlane FaultKind = "dataplane"
	// FaultRelay kills one relay (workers fail over to the remaining
	// relays or the direct CP path; revive is not supported).
	FaultRelay FaultKind = "relay"
	// FaultControlPlane kills the current control plane leader ("cp-kill":
	// a follower wins the next election and recovers from its applied
	// log) or revives the last killed replica ("cp-revive": it rejoins as
	// a follower and catches up from the leader's log). Requires
	// Config.ControlPlanes > 1.
	FaultControlPlane FaultKind = "controlplane"
)

// Event is one entry of the declarative schedule, fired at a
// trace-relative time during the replay. Zero-valued fields are ignored,
// so one event can be a pure phase marker, a fault, a rollout flip, or
// any combination.
type Event struct {
	// At is the trace-relative fire time (wall time = At × TimeScale).
	At time.Duration
	// Phase, when non-empty, starts a new measurement phase: samples
	// with trace time >= At are bucketed under this name until the next
	// marker.
	Phase string
	// Kind and Action describe a fault ("kill" or "revive"); empty Kind
	// means no fault.
	Kind   FaultKind
	Action string
	// Frac is the worker-rack kill fraction (FaultWorkerRack only).
	Frac float64
	// Index selects the data plane replica or relay (FaultDataPlane /
	// FaultRelay).
	Index int
	// Rollout, when non-empty, installs this traffic split for
	// Config.RolloutFunction on the front end's version router.
	Rollout []versioning.Version
	// Promote, when non-empty, promotes this version to 100% of
	// Config.RolloutFunction's traffic.
	Promote string
}

// Config parameterizes one scenario run.
type Config struct {
	// Trace is the workload to replay (required).
	Trace *trace.Trace
	// TimeScale compresses trace time onto the wall clock
	// (default 1/30: one trace minute per wall second).
	TimeScale float64
	// Warmup is the trace-relative cutoff before which samples land in
	// the "warmup" phase (default Trace.Duration/3, the paper's discard
	// window). Measurement phases start at Warmup with phase "steady".
	Warmup time.Duration
	// ControlPlanes is the CP replica count (default 1, the seed's single
	// CP). With > 1 the tier runs Raft log replication — every durable
	// write commits at quorum and each replica applies it to its own
	// store — and the fault schedule may kill and revive CP replicas.
	ControlPlanes int
	// CPFollowerReads lets CP follower replicas serve read-only RPCs
	// (front-end membership polls) from their applied store.
	CPFollowerReads bool
	// DataPlanes is the replica count (default 3).
	DataPlanes int
	// Workers is the emulated fleet size (default 24).
	Workers int
	// Relays, when > 0, stands up a relay tier and routes worker
	// liveness through it (default 0: direct WN → CP).
	Relays int
	// AsyncEveryN submits every Nth trace invocation as a durable async
	// request instead of a sync invoke (0 disables async traffic).
	AsyncEveryN int
	// WorkflowEveryN turns every Nth trace invocation into a workflow
	// execution — alternating a 3-step chain and a fan-out/fan-in
	// diamond over dedicated wf-* functions (0 disables workflows).
	WorkflowEveryN int
	// RolloutFunction is the logical function whose traffic the Rollout/
	// Promote events shift (default: the trace's hottest function). The
	// driver registers "<name>@v2" as its second version.
	RolloutFunction string
	// Schedule is the declarative fault/phase/rollout timeline.
	Schedule []Event
	// ExecCap bounds each emulated execution sleep (default 80ms) so a
	// trace tail can't outlive the compressed replay.
	ExecCap time.Duration
	// MaxInFlight bounds concurrently outstanding invocations
	// (default 512).
	MaxInFlight int
	// QueueTimeout bounds data plane cold-start queueing (default 30s —
	// far above the compressed failure-detection windows, so invokes
	// caught by a kill wait out the re-placement instead of failing).
	QueueTimeout time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Trace == nil || len(c.Trace.Invocations) == 0 {
		return c, fmt.Errorf("scenario: empty trace")
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1.0 / 30.0
	}
	if c.Warmup == 0 {
		c.Warmup = c.Trace.Duration / 3
	}
	if c.DataPlanes <= 0 {
		c.DataPlanes = 3
	}
	if c.Workers <= 0 {
		c.Workers = 24
	}
	if c.ExecCap <= 0 {
		c.ExecCap = 80 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 30 * time.Second
	}
	if c.RolloutFunction == "" {
		c.RolloutFunction = HottestFunction(c.Trace)
	}
	if c.ControlPlanes <= 0 {
		c.ControlPlanes = 1
	}
	for _, ev := range c.Schedule {
		if ev.Kind == FaultRelay && ev.Action == "revive" {
			return c, fmt.Errorf("scenario: relay revive is not supported")
		}
		if ev.Kind == FaultRelay && c.Relays == 0 {
			return c, fmt.Errorf("scenario: relay fault scheduled with Relays=0")
		}
		if ev.Kind == FaultDataPlane && ev.Index >= c.DataPlanes {
			return c, fmt.Errorf("scenario: dataplane fault index %d out of range", ev.Index)
		}
		if ev.Kind == FaultControlPlane && c.ControlPlanes <= 1 {
			return c, fmt.Errorf("scenario: control plane fault scheduled with ControlPlanes=1")
		}
	}
	return c, nil
}

// HottestFunction returns the trace function with the highest average
// rate — the default rollout target (callers building a schedule need
// the name to phrase the version split).
func HottestFunction(tr *trace.Trace) string {
	best := tr.Functions[0]
	for _, f := range tr.Functions[1:] {
		if f.RatePerMinute > best.RatePerMinute {
			best = f
		}
	}
	return best.Name
}

// PhaseStats is one measurement phase's aggregate.
type PhaseStats struct {
	Phase string `json:"phase"`
	// FromMin/ToMin bound the phase in trace minutes.
	FromMin float64 `json:"from_min"`
	ToMin   float64 `json:"to_min"`
	// Sync invoke outcomes.
	Invocations int     `json:"invocations"`
	Failed      int     `json:"failed"`
	ColdStarts  int     `json:"cold_starts"`
	ColdRate    float64 `json:"cold_rate"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// RPS is sync invocations per wall second of the phase.
	RPS float64 `json:"rps"`
	// Async submissions and workflow executions landing in the phase.
	Async       int `json:"async"`
	Workflows   int `json:"workflows"`
	WorkflowOK  int `json:"workflow_ok"`
	VersionedV2 int `json:"versioned_v2"`
}

// Report is the scenario outcome.
type Report struct {
	TraceFunctions   int     `json:"trace_functions"`
	TraceInvocations int     `json:"trace_invocations"`
	TraceMinutes     float64 `json:"trace_minutes"`
	WallSeconds      float64 `json:"wall_seconds"`

	Phases []PhaseStats `json:"phases"`

	// LostSync counts sync invocations (workflow steps excluded) that
	// returned an error anywhere in the replay — the zero-loss claim.
	LostSync int `json:"lost_sync"`
	// Async accounting: accepted acknowledgments, accept errors, records
	// still unsettled in the shared store after the post-replay drain
	// (the stranded set — zero with lease failover), and drain time.
	AsyncAccepted     int     `json:"async_accepted"`
	AsyncAcceptFailed int     `json:"async_accept_failed"`
	AsyncStranded     int     `json:"async_stranded"`
	AsyncDrainMs      float64 `json:"async_drain_ms"`

	Workflows           int     `json:"workflows"`
	WorkflowOK          int     `json:"workflow_ok"`
	WorkflowSuccessRate float64 `json:"workflow_success_rate"`

	// VersionServed counts, for the rollout function only, which
	// concrete version's handler served each successful invocation;
	// UnversionedServes counts bodies tagged with neither version
	// (must stay zero: every invocation resolves to exactly one version).
	VersionServed     map[string]int `json:"version_served"`
	UnversionedServes int            `json:"unversioned_serves"`

	FaultsInjected []string `json:"faults_injected"`

	// Control plane sweep visibility of the injected faults.
	WorkerFailuresDetected int64 `json:"worker_failures_detected"`
	DPFailuresDetected     int64 `json:"dataplane_failures_detected"`
	DPRevivals             int64 `json:"dataplane_revivals"`
	RelayFailuresDetected  int64 `json:"relay_failures_detected"`
	LBFailovers            int64 `json:"lb_failovers"`
	// CPRecoveries counts control plane leadership recoveries (1 for the
	// initial election; each cp-kill adds one more as a follower takes
	// over and replays its applied log).
	CPRecoveries int64 `json:"cp_recoveries"`
}

// sample is one replayed invocation's outcome, bucketed by trace time.
type sample struct {
	at     time.Duration
	kind   uint8 // 0 sync, 1 async, 2 workflow
	failed bool
	cold   bool
	latMs  float64
	v2     bool // rollout function served by @v2
}

const (
	kindSync = iota
	kindAsync
	kindWorkflow
)

// execMagic prefixes encoded exec payloads so chained workflow bodies
// (which start with a function-name tag) decode to a zero sleep instead
// of garbage.
var execMagic = [4]byte{'e', 'x', 'e', 'c'}

// EncodeExec builds an invocation payload requesting an emulated
// execution sleep of d.
func EncodeExec(d time.Duration) []byte {
	b := make([]byte, 12)
	copy(b, execMagic[:])
	binary.LittleEndian.PutUint64(b[4:], uint64(d))
	return b
}

// DecodeExec recovers the requested sleep (0 for foreign payloads).
func DecodeExec(b []byte) time.Duration {
	if len(b) < 12 || [4]byte(b[:4]) != execMagic {
		return 0
	}
	return time.Duration(binary.LittleEndian.Uint64(b[4:12]))
}

// versionTag splits a worker body "function\x00payload" produced by the
// driver's HandlerFn into the serving function name.
func versionTag(body []byte) string {
	for i, c := range body {
		if c == 0 {
			return string(body[:i])
		}
	}
	return ""
}

const cpAddr = "e2e-cp"

// cpTier is the scenario's control plane tier: one seed-exact replica by
// default, or a Raft-replicated group the fault schedule can decapitate
// and heal.
type cpTier struct {
	tr            *transport.InProc
	metrics       *telemetry.Registry
	addrs         []string
	stores        []*store.Store
	cps           []*controlplane.ControlPlane
	followerReads bool
	lastKilled    int
}

func newCPTier(tr *transport.InProc, cfg Config) (*cpTier, error) {
	t := &cpTier{tr: tr, metrics: telemetry.NewRegistry(), followerReads: cfg.CPFollowerReads, lastKilled: -1}
	if cfg.ControlPlanes <= 1 {
		t.addrs = []string{cpAddr}
	} else {
		for i := 0; i < cfg.ControlPlanes; i++ {
			t.addrs = append(t.addrs, fmt.Sprintf("%s%d", cpAddr, i))
		}
	}
	for i := range t.addrs {
		t.stores = append(t.stores, store.NewMemory())
		t.cps = append(t.cps, t.newCP(i, false))
	}
	for _, cp := range t.cps {
		if err := cp.Start(); err != nil {
			t.stop()
			return nil, err
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for t.leader() == nil {
		if time.Now().After(deadline) {
			t.stop()
			return nil, fmt.Errorf("scenario: no control plane leader elected")
		}
		time.Sleep(time.Millisecond)
	}
	return t, nil
}

func (t *cpTier) newCP(i int, rejoin bool) *controlplane.ControlPlane {
	c := controlplane.Config{
		Addr:              t.addrs[i],
		Transport:         t.tr,
		AutoscaleInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		DataPlaneTimeout:  400 * time.Millisecond,
		NoDownscaleWindow: time.Millisecond,
		Metrics:           t.metrics,
	}
	if len(t.addrs) > 1 {
		c.Peers = t.addrs
		c.LocalStore = t.stores[i]
		c.FollowerReads = t.followerReads
		c.RaftRejoin = rejoin
	} else {
		c.DB = t.stores[i]
	}
	return controlplane.New(c)
}

func (t *cpTier) leader() *controlplane.ControlPlane {
	for _, cp := range t.cps {
		if cp.IsLeader() {
			return cp
		}
	}
	return nil
}

// killLeader crashes the current leader, returning its index (-1 if no
// replica currently leads).
func (t *cpTier) killLeader() int {
	for i, cp := range t.cps {
		if cp.IsLeader() {
			cp.Stop()
			t.lastKilled = i
			return i
		}
	}
	return -1
}

// revive restarts the last killed replica with a fresh store; it rejoins
// as a follower and the leader's log replay catches it up.
func (t *cpTier) revive() error {
	i := t.lastKilled
	if i < 0 {
		return fmt.Errorf("no killed control plane to revive")
	}
	t.stores[i] = store.NewMemory()
	cp := t.newCP(i, true)
	if err := cp.Start(); err != nil {
		return err
	}
	t.cps[i] = cp
	t.lastKilled = -1
	return nil
}

func (t *cpTier) stop() {
	for _, cp := range t.cps {
		cp.Stop()
	}
	for _, s := range t.stores {
		s.Close()
	}
}

// Run replays the configured scenario and returns its report. The error
// return covers harness failures (a component refusing to start, a
// registration failing); lost or stranded work is reported, not errored,
// so callers can assert on it.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tr := transport.NewInProc()
	shared := store.NewMemory()
	defer shared.Close()

	cpT, err := newCPTier(tr, cfg)
	if err != nil {
		return nil, err
	}
	defer cpT.stop()

	var rls *fleet.Relays
	var relayAddrs []string
	if cfg.Relays > 0 {
		rls = fleet.NewRelays(fleet.RelaysConfig{
			Count:         cfg.Relays,
			Transport:     tr,
			ControlPlanes: cpT.addrs,
			FlushInterval: 20 * time.Millisecond,
		})
		if err := rls.Start(); err != nil {
			return nil, err
		}
		defer rls.Stop()
		relayAddrs = rls.Addrs()
	}

	dpMetrics := telemetry.NewRegistry()
	dps := fleet.NewDataPlanes(fleet.DataPlanesConfig{
		Count:             cfg.DataPlanes,
		Transport:         tr,
		ControlPlanes:     cpT.addrs,
		SharedStore:       shared,
		HeartbeatInterval: 50 * time.Millisecond,
		MetricInterval:    5 * time.Millisecond,
		QueueTimeout:      cfg.QueueTimeout,
		Metrics:           dpMetrics,
	})
	if err := dps.Start(); err != nil {
		return nil, err
	}
	defer dps.Stop()

	execCap := cfg.ExecCap
	fl := fleet.New(fleet.Config{
		Size:              cfg.Workers,
		Transport:         tr,
		ControlPlanes:     cpT.addrs,
		Relays:            relayAddrs,
		HeartbeatInterval: 50 * time.Millisecond,
		ReadyDelay:        5 * time.Millisecond,
		HandlerFn: func(function string, payload []byte) ([]byte, error) {
			if d := DecodeExec(payload); d > 0 {
				if d > execCap {
					d = execCap
				}
				time.Sleep(d)
			}
			out := make([]byte, 0, len(function)+1+len(payload))
			out = append(out, function...)
			out = append(out, 0)
			out = append(out, payload...)
			return out, nil
		},
	})
	if err := fl.Start(); err != nil {
		return nil, err
	}
	defer fl.Stop()

	router := versioning.NewRouter()
	lb := frontend.New(frontend.Config{
		Transport:          tr,
		DataPlanes:         dps.Addrs(),
		ControlPlanes:      cpT.addrs,
		MembershipInterval: 50 * time.Millisecond,
		FailureCooldown:    150 * time.Millisecond,
		RequestTimeout:     60 * time.Second,
		Versions:           router,
	})
	if err := lb.Start(); err != nil {
		return nil, err
	}
	defer lb.Stop()

	if err := registerFunctions(tr, cpT, cfg); err != nil {
		return nil, err
	}
	if lead := cpT.leader(); lead != nil {
		lead.Reconcile()
	}
	if err := awaitPinnedScale(cpT, cfg); err != nil {
		return nil, err
	}

	rep := &Report{
		TraceFunctions:   len(cfg.Trace.Functions),
		TraceInvocations: len(cfg.Trace.Invocations),
		TraceMinutes:     cfg.Trace.Duration.Minutes(),
		VersionServed:    make(map[string]int),
	}

	// --- Replay ---
	var (
		mu        sync.Mutex
		samples   []sample
		wg        sync.WaitGroup
		wfCounter int
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	invoker := lbInvoker{lb: lb}
	orch := workflow.NewOrchestrator(invoker)
	sem := make(chan struct{}, cfg.MaxInFlight)
	start := time.Now()

	stopFaults := make(chan struct{})
	faultsDone := make(chan struct{})
	go runSchedule(cfg, start, cpT, fl, dps, rls, router, rep, &mu, stopFaults, faultsDone)

	v2name := cfg.RolloutFunction + "@v2"
	for i, inv := range cfg.Trace.Invocations {
		at := time.Duration(float64(inv.At) * cfg.TimeScale)
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		isWF := cfg.WorkflowEveryN > 0 && i%cfg.WorkflowEveryN == 0
		isAsync := !isWF && cfg.AsyncEveryN > 0 && i%cfg.AsyncEveryN == 0
		payload := EncodeExec(time.Duration(float64(inv.Exec) * cfg.TimeScale))
		wg.Add(1)
		sem <- struct{}{}
		switch {
		case isWF:
			wfCounter++
			wf := chainWorkflow
			if wfCounter%2 == 0 {
				wf = fanWorkflow
			}
			go func(traceAt time.Duration, wf *workflow.Workflow) {
				defer wg.Done()
				defer func() { <-sem }()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				t0 := time.Now()
				_, err := orch.Execute(ctx, wf, EncodeExec(2*time.Millisecond))
				record(sample{at: traceAt, kind: kindWorkflow, failed: err != nil,
					latMs: float64(time.Since(t0)) / float64(time.Millisecond)})
			}(inv.At, wf)
		case isAsync:
			go func(traceAt time.Duration, name string, payload []byte) {
				defer wg.Done()
				defer func() { <-sem }()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				_, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: name, Async: true, Payload: payload})
				record(sample{at: traceAt, kind: kindAsync, failed: err != nil})
			}(inv.At, inv.Function.Name, payload)
		default:
			go func(traceAt time.Duration, name string, payload []byte) {
				defer wg.Done()
				defer func() { <-sem }()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				t0 := time.Now()
				resp, err := lb.Invoke(ctx, &proto.InvokeRequest{Function: name, Payload: payload})
				s := sample{at: traceAt, kind: kindSync, failed: err != nil}
				if err == nil {
					s.cold = resp.ColdStart
					s.latMs = float64(time.Since(t0)) / float64(time.Millisecond)
					if name == cfg.RolloutFunction {
						switch versionTag(resp.Body) {
						case v2name:
							s.v2 = true
							mu.Lock()
							rep.VersionServed[v2name]++
							mu.Unlock()
						case cfg.RolloutFunction:
							mu.Lock()
							rep.VersionServed[cfg.RolloutFunction]++
							mu.Unlock()
						default:
							mu.Lock()
							rep.UnversionedServes++
							mu.Unlock()
						}
					}
				}
				record(s)
			}(inv.At, inv.Function.Name, payload)
		}
	}
	wg.Wait()
	close(stopFaults)
	<-faultsDone
	rep.WallSeconds = time.Since(start).Seconds()

	// --- Post-replay async drain ---
	drainStart := time.Now()
	stranded := awaitDrain(shared, 30*time.Second)
	rep.AsyncStranded = stranded
	rep.AsyncDrainMs = float64(time.Since(drainStart)) / float64(time.Millisecond)

	// --- Aggregate ---
	aggregate(cfg, rep, samples)
	rep.WorkerFailuresDetected = cpT.metrics.Counter("worker_failures_detected").Value()
	rep.DPFailuresDetected = cpT.metrics.Counter("dataplane_failures_detected").Value()
	rep.DPRevivals = cpT.metrics.Counter("dataplane_revivals").Value()
	rep.RelayFailuresDetected = cpT.metrics.Counter("relay_failures_detected").Value()
	rep.CPRecoveries = cpT.metrics.Counter("recoveries").Value()
	rep.LBFailovers = lb.Metrics().Counter("dataplane_failovers").Value()
	return rep, nil
}

// lbInvoker adapts the front-end LB to workflow.Invoker: every workflow
// step is a real sync invoke through the data plane tier.
type lbInvoker struct{ lb *frontend.LB }

func (v lbInvoker) Invoke(ctx context.Context, function string, payload []byte) ([]byte, error) {
	resp, err := v.lb.Invoke(ctx, &proto.InvokeRequest{Function: function, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// The two workflow templates the replay alternates between: a 3-step
// chain and a fan-out/fan-in diamond, over dedicated pinned-warm wf-*
// functions.
var chainWorkflow = &workflow.Workflow{
	Name: "chain",
	Steps: []workflow.Step{
		{Name: "a", Function: "wf-a"},
		{Name: "b", Function: "wf-b", After: []string{"a"}},
		{Name: "c", Function: "wf-c", After: []string{"b"}},
	},
}

var fanWorkflow = &workflow.Workflow{
	Name: "fan",
	Steps: []workflow.Step{
		{Name: "root", Function: "wf-a"},
		{Name: "left", Function: "wf-b", After: []string{"root"}},
		{Name: "mid", Function: "wf-c", After: []string{"root"}},
		{Name: "right", Function: "wf-d", After: []string{"root"}},
		{Name: "join", Function: "wf-e", After: []string{"left", "mid", "right"}},
	},
}

// wfFunctions are the workflow step functions, registered pinned warm
// (MinScale 1) like a deployment would pin a latency-critical pipeline.
var wfFunctions = []string{"wf-a", "wf-b", "wf-c", "wf-d", "wf-e"}

// registerFunctions registers the trace functions (compressed autoscaler
// windows, scale from zero), the workflow functions (pinned warm), and
// the rollout function's @v2 (pre-warmed canary).
func registerFunctions(tr *transport.InProc, cpT *cpTier, cfg Config) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// cpclient handles leader discovery across the tier (a follower may
	// answer the first dial after a multi-replica election).
	client := cpclient.New(tr, cpT.addrs)
	reg := func(fn core.Function) error {
		_, err := client.Call(ctx, proto.MethodRegisterFunction, core.MarshalFunction(&fn))
		return err
	}
	for _, spec := range cfg.Trace.Functions {
		fn := traceFunction(spec.Name)
		if err := reg(fn); err != nil {
			return err
		}
	}
	for _, name := range wfFunctions {
		fn := traceFunction(name)
		fn.Scaling.MinScale = 1
		fn.Scaling.StableWindow = time.Hour
		if err := reg(fn); err != nil {
			return err
		}
	}
	v2 := traceFunction(cfg.RolloutFunction + "@v2")
	v2.Scaling.MinScale = 1
	v2.Scaling.StableWindow = time.Hour
	return reg(v2)
}

// traceFunction mirrors the warmth experiment's compressed scaling: the
// autoscaler windows shrink with the trace so functions scale to zero
// between timer firings just as they would over real minutes.
func traceFunction(name string) core.Function {
	fn := core.Function{
		Name:    name,
		Image:   "registry.local/" + name,
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.StableWindow = 300 * time.Millisecond
	fn.Scaling.PanicWindow = 100 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = 100 * time.Millisecond
	return fn
}

// awaitPinnedScale waits for every MinScale-1 function (workflow steps,
// the @v2 canary) to hold a ready sandbox before the replay starts.
func awaitPinnedScale(cpT *cpTier, cfg Config) error {
	pinned := append(append([]string{}, wfFunctions...), cfg.RolloutFunction+"@v2")
	deadline := time.Now().Add(60 * time.Second)
	for _, name := range pinned {
		for {
			if cp := cpT.leader(); cp != nil {
				if ready, _ := cp.FunctionScale(name); ready >= 1 {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("scenario: %s never scaled", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// runSchedule fires the declarative schedule against the live tiers,
// appending a human-readable line per fired fault to rep.FaultsInjected.
func runSchedule(cfg Config, start time.Time, cpT *cpTier, fl *fleet.Fleet, dps *fleet.DataPlanes,
	rls *fleet.Relays, router *versioning.Router, rep *Report, mu *sync.Mutex,
	stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	evs := append([]Event(nil), cfg.Schedule...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	note := func(format string, args ...any) {
		mu.Lock()
		rep.FaultsInjected = append(rep.FaultsInjected, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	var rackVictims []*fleet.Worker
	for _, ev := range evs {
		wall := time.Duration(float64(ev.At) * cfg.TimeScale)
		select {
		case <-stop:
			return
		case <-time.After(time.Until(start.Add(wall))):
		}
		if len(ev.Rollout) > 0 {
			if err := router.SetSplit(cfg.RolloutFunction, ev.Rollout...); err != nil {
				note("t=+%v rollout split failed: %v", ev.At, err)
			} else {
				note("t=+%v rollout split installed on %s", ev.At, cfg.RolloutFunction)
			}
		}
		if ev.Promote != "" {
			if err := router.Promote(cfg.RolloutFunction, ev.Promote); err != nil {
				note("t=+%v promote failed: %v", ev.At, err)
			} else {
				note("t=+%v promoted %s", ev.At, ev.Promote)
			}
		}
		switch {
		case ev.Kind == FaultWorkerRack && ev.Action == "kill":
			rackVictims = fl.StopFraction(ev.Frac)
			note("t=+%v kill worker-rack frac=%.2f (%d workers)", ev.At, ev.Frac, len(rackVictims))
		case ev.Kind == FaultWorkerRack && ev.Action == "revive":
			if err := fl.Restart(rackVictims); err != nil {
				note("t=+%v revive worker-rack failed: %v", ev.At, err)
			} else {
				note("t=+%v revive worker-rack (%d workers)", ev.At, len(rackVictims))
			}
			rackVictims = nil
		case ev.Kind == FaultDataPlane && ev.Action == "kill":
			dps.StopOne(ev.Index)
			note("t=+%v kill dataplane %d", ev.At, ev.Index)
		case ev.Kind == FaultDataPlane && ev.Action == "revive":
			if err := dps.Restart(ev.Index); err != nil {
				note("t=+%v revive dataplane %d failed: %v", ev.At, ev.Index, err)
			} else {
				note("t=+%v revive dataplane %d", ev.At, ev.Index)
			}
		case ev.Kind == FaultRelay && ev.Action == "kill":
			rls.StopOne(ev.Index)
			note("t=+%v kill relay %d", ev.At, ev.Index)
		case ev.Kind == FaultControlPlane && ev.Action == "kill":
			if i := cpT.killLeader(); i >= 0 {
				note("t=+%v kill controlplane leader (replica %d)", ev.At, i)
			} else {
				note("t=+%v kill controlplane: no live leader", ev.At)
			}
		case ev.Kind == FaultControlPlane && ev.Action == "revive":
			revived := cpT.lastKilled
			if err := cpT.revive(); err != nil {
				note("t=+%v revive controlplane failed: %v", ev.At, err)
			} else {
				note("t=+%v revive controlplane replica %d", ev.At, revived)
			}
		}
	}
}

// awaitDrain polls the shared async backlog until it empties or stops
// moving for a second, returning the residue (the stranded set).
func awaitDrain(shared *store.Store, timeout time.Duration) int {
	start := time.Now()
	last, lastChange := dataplane.AsyncBacklog(shared), time.Now()
	for time.Since(start) < timeout {
		b := dataplane.AsyncBacklog(shared)
		if b == 0 {
			return 0
		}
		if b != last {
			last, lastChange = b, time.Now()
		} else if time.Since(lastChange) > time.Second {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return last
}

// aggregate buckets samples into phases (warmup, steady, then every
// named marker in the schedule) and computes the per-phase stats.
func aggregate(cfg Config, rep *Report, samples []sample) {
	type mark struct {
		at   time.Duration
		name string
	}
	marks := []mark{{0, "warmup"}, {cfg.Warmup, "steady"}}
	for _, ev := range cfg.Schedule {
		if ev.Phase != "" {
			marks = append(marks, mark{ev.At, ev.Phase})
		}
	}
	sort.SliceStable(marks, func(i, j int) bool { return marks[i].at < marks[j].at })

	phaseOf := func(at time.Duration) int {
		idx := 0
		for i, m := range marks {
			if at >= m.at {
				idx = i
			}
		}
		return idx
	}

	hists := make([]*telemetry.Histogram, len(marks))
	stats := make([]PhaseStats, len(marks))
	for i, m := range marks {
		hists[i] = telemetry.NewHistogram()
		stats[i].Phase = m.name
		stats[i].FromMin = m.at.Minutes()
		end := cfg.Trace.Duration
		if i+1 < len(marks) {
			end = marks[i+1].at
		}
		stats[i].ToMin = end.Minutes()
	}
	for _, s := range samples {
		i := phaseOf(s.at)
		st := &stats[i]
		switch s.kind {
		case kindSync:
			st.Invocations++
			if s.failed {
				st.Failed++
				rep.LostSync++
				continue
			}
			if s.cold {
				st.ColdStarts++
			}
			if s.v2 {
				st.VersionedV2++
			}
			hists[i].ObserveMs(s.latMs)
		case kindAsync:
			st.Async++
			if s.failed {
				rep.AsyncAcceptFailed++
			} else {
				rep.AsyncAccepted++
			}
		case kindWorkflow:
			st.Workflows++
			rep.Workflows++
			if !s.failed {
				st.WorkflowOK++
				rep.WorkflowOK++
			}
		}
	}
	for i := range stats {
		st := &stats[i]
		if n := st.Invocations - st.Failed; n > 0 {
			st.ColdRate = float64(st.ColdStarts) / float64(n)
		}
		st.P50Ms = hists[i].Percentile(50)
		st.P99Ms = hists[i].Percentile(99)
		if wall := (st.ToMin - st.FromMin) * 60 * cfg.TimeScale; wall > 0 {
			st.RPS = float64(st.Invocations) / wall
		}
	}
	rep.Phases = stats
	if rep.Workflows > 0 {
		rep.WorkflowSuccessRate = float64(rep.WorkflowOK) / float64(rep.Workflows)
	}
}
