package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openLog(t *testing.T, path string, replay func([]byte) error) *Log {
	t.Helper()
	l, err := Open(path, FsyncNever, replay)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func TestAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l := openLog(t, path, nil)
	records := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var replayed [][]byte
	l2 := openLog(t, path, func(rec []byte) error {
		replayed = append(replayed, append([]byte(nil), rec...))
		return nil
	})
	defer l2.Close()
	if len(replayed) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(records))
	}
	for i := range records {
		if !bytes.Equal(replayed[i], records[i]) {
			t.Errorf("record %d = %q, want %q", i, replayed[i], records[i])
		}
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l := openLog(t, path, nil)
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Append([]byte("will-be-torn")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Tear the final record: chop off its last 3 bytes.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	var replayed [][]byte
	l2 := openLog(t, path, func(rec []byte) error {
		replayed = append(replayed, append([]byte(nil), rec...))
		return nil
	})
	if len(replayed) != 1 || string(replayed[0]) != "intact" {
		t.Fatalf("replayed %v, want just [intact]", replayed)
	}
	// The log must be appendable after truncating the torn tail.
	if err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var again []string
	l3 := openLog(t, path, func(rec []byte) error {
		again = append(again, string(rec))
		return nil
	})
	defer l3.Close()
	want := []string{"intact", "after-recovery"}
	if len(again) != 2 || again[0] != want[0] || again[1] != want[1] {
		t.Fatalf("after recovery replay = %v, want %v", again, want)
	}
}

func TestCorruptTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	l := openLog(t, path, nil)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("bad")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed []string
	l2 := openLog(t, path, func(rec []byte) error {
		replayed = append(replayed, string(rec))
		return nil
	})
	defer l2.Close()
	if len(replayed) != 1 || replayed[0] != "good" {
		t.Fatalf("replay = %v, want [good]", replayed)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	l := openLog(t, path, nil)
	for i := 0; i < 100; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	if err := l.Rewrite([][]byte{[]byte("only-live-state")}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if l.Size() >= before {
		t.Errorf("size after rewrite %d, want < %d", l.Size(), before)
	}
	// Appends after rewrite must still work and replay correctly.
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var replayed []string
	l2 := openLog(t, path, func(rec []byte) error {
		replayed = append(replayed, string(rec))
		return nil
	})
	defer l2.Close()
	want := []string{"only-live-state", "tail"}
	if len(replayed) != 2 || replayed[0] != want[0] || replayed[1] != want[1] {
		t.Fatalf("replay = %v, want %v", replayed, want)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l := openLog(t, path, nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Errorf("append on closed log should fail")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
}

func TestFsyncAlwaysDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fsync.wal")
	l, err := Open(path, FsyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Without closing (simulating a crash), the data must already be on
	// disk because every append synced.
	var replayed int
	l2 := openLog(t, path, func([]byte) error { replayed++; return nil })
	defer l2.Close()
	defer l.Close()
	if replayed != 10 {
		t.Errorf("replayed %d records, want 10", replayed)
	}
}

// TestQuickReplayRoundTrip property-tests that arbitrary record sequences
// replay exactly.
func TestQuickReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(records [][]byte) bool {
		n++
		path := filepath.Join(dir, "q", itoa(n))
		os.MkdirAll(filepath.Dir(path), 0o755)
		l, err := Open(path, FsyncNever, nil)
		if err != nil {
			return false
		}
		for _, r := range records {
			if err := l.Append(r); err != nil {
				l.Close()
				return false
			}
		}
		l.Close()
		var got [][]byte
		l2, err := Open(path, FsyncNever, func(rec []byte) error {
			got = append(got, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			return false
		}
		l2.Close()
		if len(got) != len(records) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
