// Package wal implements the append-only log underlying the cluster state
// store. Records are CRC-framed so that a torn tail write (e.g. a crash
// mid-append) is detected and truncated on replay rather than corrupting
// recovery. The paper's Dirigent deployment runs Redis in append-only mode
// with fsync on every query (§5.1); FsyncAlways reproduces that policy.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// FsyncPolicy controls when appended records are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append (Redis appendfsync=always,
	// the configuration the paper evaluates).
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves syncing to the OS; used by tests and by the
	// persist-everything ablation to isolate serialization cost.
	FsyncNever
)

// ErrCorrupt reports a framing or checksum failure in the middle of the
// log (as opposed to a torn tail, which replay silently truncates).
var ErrCorrupt = errors.New("wal: corrupt record")

const headerSize = 8 // length(4) + crc32(4)

// Log is an append-only record log. It is safe for concurrent appends.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	policy FsyncPolicy
	size   int64
	path   string
}

// Open opens (creating if necessary) the log at path and replays existing
// records through replay, which may be nil. A torn final record is
// truncated. Replay errors abort opening.
func Open(path string, policy FsyncPolicy, replay func(rec []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	validSize, err := scan(f, replay)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{
		f:      f,
		w:      bufio.NewWriterSize(f, 1<<16),
		policy: policy,
		size:   validSize,
		path:   path,
	}, nil
}

// scan iterates records from the start of f, invoking replay on each,
// and returns the byte offset of the end of the last complete record.
func scan(f *os.File, replay func([]byte) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	header := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			// Clean EOF or torn header: stop at last valid offset.
			return offset, nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if length > 1<<30 {
			// Absurd length: treat as torn/garbage tail.
			return offset, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return offset, nil // torn or bit-rotted tail
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return 0, fmt.Errorf("wal: replay at offset %d: %w", offset, err)
			}
		}
		offset += int64(headerSize) + int64(length)
	}
}

// Append writes one record and, under FsyncAlways, syncs it to disk.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	var header [headerSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(rec))
	if _, err := l.w.Write(header[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if l.policy == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.size += int64(headerSize) + int64(len(rec))
	return nil
}

// Size returns the current byte size of the log.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Rewrite atomically replaces the log's contents with the given records
// (compaction). It writes a sibling temp file, fsyncs, and renames over
// the original.
func (l *Log) Rewrite(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	tmpPath := l.path + ".rewrite"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	var size int64
	for _, rec := range records {
		var header [headerSize]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(rec))
		if _, err := w.Write(header[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		if _, err := w.Write(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		size += int64(headerSize) + int64(len(rec))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: rewrite close: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("wal: rewrite rename: %w", err)
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite reopen: %w", err)
	}
	old.Close()
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = size
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
