// Package wal implements the append-only log underlying the cluster state
// store. Records are CRC-framed so that a torn tail write (e.g. a crash
// mid-append) is detected and truncated on replay rather than corrupting
// recovery. The paper's Dirigent deployment runs Redis in append-only mode
// with fsync on every query (§5.1); FsyncAlways reproduces that policy,
// and FsyncGroup keeps its durability while group-committing concurrent
// appends into a single fsync.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// FsyncPolicy controls when appended records are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append (Redis appendfsync=always,
	// the configuration the paper evaluates).
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves syncing to the OS; used by tests and by the
	// persist-everything ablation to isolate serialization cost.
	FsyncNever
	// FsyncGroup coalesces concurrent appends into a single fsync (group
	// commit): one appender becomes the sync leader and flushes the whole
	// buffered batch to disk, the rest wait for the covering sync. Every
	// append is still acknowledged only after its record is durable, so
	// FsyncGroup keeps FsyncAlways' durability while amortizing the fsync
	// across all concurrent writers.
	FsyncGroup
)

// ErrCorrupt reports a framing or checksum failure in the middle of the
// log (as opposed to a torn tail, which replay silently truncates).
var ErrCorrupt = errors.New("wal: corrupt record")

const headerSize = 8 // length(4) + crc32(4)

// Log is an append-only record log. It is safe for concurrent appends.
type Log struct {
	mu         sync.Mutex // guards f, w, size, writtenSeq
	f          *os.File
	w          *bufio.Writer
	policy     FsyncPolicy
	size       int64
	path       string
	writtenSeq uint64 // records buffered into w so far

	// Group-commit state. syncedSeq is the highest record sequence known
	// durable; syncing is true while a leader's fsync is in flight. A
	// failed group fsync poisons the log: after fsync failure the kernel
	// may have dropped the dirty pages, so no later "successful" fsync
	// can be trusted to have made earlier records durable — every
	// subsequent Sync fails with the original error.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	syncedSeq uint64
	poisoned  error // first group-fsync failure; sticky

	syncRounds  atomic.Uint64 // fsync invocations
	syncRecords atomic.Uint64 // records covered by those fsyncs
}

// Open opens (creating if necessary) the log at path and replays existing
// records through replay, which may be nil. A torn final record is
// truncated. Replay errors abort opening.
func Open(path string, policy FsyncPolicy, replay func(rec []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	validSize, err := scan(f, replay)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{
		f:      f,
		w:      bufio.NewWriterSize(f, 1<<16),
		policy: policy,
		size:   validSize,
		path:   path,
	}
	l.syncCond = sync.NewCond(&l.syncMu)
	return l, nil
}

// scan iterates records from the start of f, invoking replay on each,
// and returns the byte offset of the end of the last complete record.
func scan(f *os.File, replay func([]byte) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: seek: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	header := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			// Clean EOF or torn header: stop at last valid offset.
			return offset, nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if length > 1<<30 {
			// Absurd length: treat as torn/garbage tail.
			return offset, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return offset, nil // torn or bit-rotted tail
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				return 0, fmt.Errorf("wal: replay at offset %d: %w", offset, err)
			}
		}
		offset += int64(headerSize) + int64(length)
	}
}

var errClosed = errors.New("wal: closed")

// Append writes one record and makes it as durable as the policy demands
// before returning: flushed (FsyncNever), individually fsynced
// (FsyncAlways), or covered by a group fsync (FsyncGroup).
func (l *Log) Append(rec []byte) error {
	seq, err := l.Write(rec)
	if err != nil {
		return err
	}
	return l.Sync(seq)
}

// Write buffers one record and returns its sequence number for a later
// Sync. Callers that interleave writes with in-memory state updates (the
// store does) buffer under their own lock and wait for durability outside
// it, which is what lets concurrent mutations share one fsync.
func (l *Log) Write(rec []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errClosed
	}
	var header [headerSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(rec))
	if _, err := l.w.Write(header[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(rec); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(headerSize) + int64(len(rec))
	l.writtenSeq++
	return l.writtenSeq, nil
}

// Sync makes the record with the given sequence number (and everything
// before it) as durable as the policy demands.
func (l *Log) Sync(seq uint64) error {
	switch l.policy {
	case FsyncNever:
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.f == nil {
			return errClosed
		}
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		return nil
	case FsyncAlways:
		// One fsync per record, deliberately uncoalesced: this is the
		// Redis appendfsync=always baseline the paper ablates against.
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.f == nil {
			return errClosed
		}
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.syncRounds.Add(1)
		l.syncRecords.Add(1)
		return nil
	default:
		return l.groupSync(seq)
	}
}

// groupSync waits until a sync covers seq, electing this goroutine as the
// sync leader when no covering sync is in flight. The leader flushes and
// fsyncs everything buffered so far, committing the whole group at once.
func (l *Log) groupSync(seq uint64) error {
	l.syncMu.Lock()
	for l.syncedSeq < seq && l.syncing && l.poisoned == nil {
		l.syncCond.Wait()
	}
	if l.poisoned != nil {
		err := l.poisoned
		l.syncMu.Unlock()
		return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", err)
	}
	if l.syncedSeq >= seq {
		// A leader's successful sync covered us while we waited.
		l.syncMu.Unlock()
		return nil
	}
	l.syncing = true
	l.syncMu.Unlock()

	// Flush the buffer under the write lock, then fsync WITHOUT it: the
	// whole point of group commit is that writers keep buffering the next
	// batch while this one is on its way to disk.
	l.mu.Lock()
	covered := l.writtenSeq
	var err error
	f := l.f
	if f == nil {
		err = errClosed
	} else {
		err = l.w.Flush()
	}
	l.mu.Unlock()
	if err == nil {
		err = f.Sync()
	}

	l.syncMu.Lock()
	if err != nil {
		// A Close racing this leader flushes and fsyncs everything
		// itself (and records the outcome), so losing the race to it is
		// not a durability failure — don't poison for it.
		if l.poisoned == nil && !errors.Is(err, errClosed) && !errors.Is(err, os.ErrClosed) {
			l.poisoned = err
		}
	} else if covered > l.syncedSeq {
		l.syncRounds.Add(1)
		l.syncRecords.Add(covered - l.syncedSeq)
		l.syncedSeq = covered
	}
	l.syncing = false
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: group fsync: %w", err)
	}
	return nil
}

// SyncStats reports how many fsync rounds have run and how many records
// they covered; records/rounds is the mean group-commit batch size.
func (l *Log) SyncStats() (rounds, records uint64) {
	return l.syncRounds.Load(), l.syncRecords.Load()
}

// Policy returns the log's fsync policy.
func (l *Log) Policy() FsyncPolicy { return l.policy }

// Size returns the current byte size of the log.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Rewrite atomically replaces the log's contents with the given records
// (compaction). It writes a sibling temp file, fsyncs, and renames over
// the original.
func (l *Log) Rewrite(records [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	tmpPath := l.path + ".rewrite"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	var size int64
	for _, rec := range records {
		var header [headerSize]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(rec))
		if _, err := w.Write(header[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		if _, err := w.Write(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: rewrite: %w", err)
		}
		size += int64(headerSize) + int64(len(rec))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rewrite fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: rewrite close: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("wal: rewrite rename: %w", err)
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite reopen: %w", err)
	}
	old.Close()
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.size = size
	return nil
}

// Close flushes, fsyncs and closes the log. Group-commit waiters whose
// records Close flushed observe the close's outcome rather than a
// spurious "closed" error.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.f == nil {
		l.mu.Unlock()
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	covered := l.writtenSeq
	l.mu.Unlock()

	l.syncMu.Lock()
	if err != nil {
		if l.poisoned == nil {
			l.poisoned = err
		}
	} else if covered > l.syncedSeq {
		l.syncedSeq = covered
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}
