package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestGroupCommitConcurrentAppendsDurable drives many concurrent
// appenders through FsyncGroup and verifies every acknowledged record
// survives Close and replays, i.e. group commit batches fsyncs without
// weakening FsyncAlways' durability contract.
func TestGroupCommitConcurrentAppendsDurable(t *testing.T) {
	const (
		writers = 16
		perW    = 50
	)
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := Open(path, FsyncGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := l.Append(fmt.Appendf(nil, "w%d-rec%d", w, i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rounds, records := l.SyncStats()
	if records != writers*perW {
		t.Errorf("SyncStats records = %d, want %d", records, writers*perW)
	}
	if rounds == 0 || rounds > records {
		t.Errorf("SyncStats rounds = %d out of range (records %d)", rounds, records)
	}
	t.Logf("group commit: %d records in %d fsync rounds (mean batch %.1f)",
		records, rounds, float64(records)/float64(rounds))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[string]bool)
	l2, err := Open(path, FsyncGroup, func(rec []byte) error {
		seen[string(rec)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			key := fmt.Sprintf("w%d-rec%d", w, i)
			if !seen[key] {
				t.Fatalf("acknowledged record %s missing after replay", key)
			}
		}
	}
}

// TestGroupCommitSequentialAppends checks the degenerate case: with no
// concurrency every append gets its own fsync round, exactly like
// FsyncAlways.
func TestGroupCommitSequentialAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.wal")
	l, err := Open(path, FsyncGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Append(fmt.Appendf(nil, "rec%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rounds, records := l.SyncStats()
	if rounds != 10 || records != 10 {
		t.Fatalf("sequential SyncStats = (%d rounds, %d records), want (10, 10)", rounds, records)
	}
}

// TestGroupCommitTornTailTolerated crashes a group-committed log
// mid-record (simulated by chopping bytes off the tail) and verifies
// reopen truncates the torn record, replays the prefix, and accepts new
// appends — the same recovery contract the other policies have.
func TestGroupCommitTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := Open(path, FsyncGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := l.Append(fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-payload.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	var replayed int
	l2, err := Open(path, FsyncGroup, func([]byte) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 4*8-1 {
		t.Fatalf("replayed %d records, want %d (torn tail dropped)", replayed, 4*8-1)
	}
	if err := l2.Append([]byte("post-recovery")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	l3, err := Open(path, FsyncGroup, func([]byte) error {
		total++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if total != 4*8 {
		t.Fatalf("after recovery replay = %d records, want %d", total, 4*8)
	}
}
