package worker

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/sandbox"
	"dirigent/internal/transport"
)

// fakeCP records worker → control-plane calls.
type fakeCP struct {
	mu         sync.Mutex
	registered []core.WorkerNode
	heartbeats int
	ready      []proto.SandboxEvent
	crashed    []proto.SandboxEvent
}

func startFakeCP(t *testing.T, tr *transport.InProc, addr string) *fakeCP {
	t.Helper()
	cp := &fakeCP{}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		switch method {
		case proto.MethodRegisterWorker:
			req, err := proto.UnmarshalRegisterWorkerRequest(payload)
			if err != nil {
				return nil, err
			}
			cp.registered = append(cp.registered, req.Worker)
		case proto.MethodWorkerHeartbeat:
			cp.heartbeats++
		case proto.MethodSandboxReady:
			ev, err := proto.UnmarshalSandboxEvent(payload)
			if err != nil {
				return nil, err
			}
			cp.ready = append(cp.ready, *ev)
		case proto.MethodSandboxReadyBatch:
			batch, err := proto.UnmarshalSandboxEventBatch(payload)
			if err != nil {
				return nil, err
			}
			cp.ready = append(cp.ready, batch.Events...)
		case proto.MethodSandboxCrashed:
			ev, err := proto.UnmarshalSandboxEvent(payload)
			if err != nil {
				return nil, err
			}
			cp.crashed = append(cp.crashed, *ev)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return cp
}

func testWorker(t *testing.T, tr *transport.InProc, cpAddr string) *Worker {
	t.Helper()
	images := NewImageRegistry()
	images.Register("img", func(p []byte) ([]byte, error) {
		return append([]byte("ran:"), p...), nil
	})
	w := New(Config{
		Node: core.WorkerNode{
			ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000,
			CPUMilli: 10000, MemoryMB: 65536,
		},
		Addr:              "10.0.0.1:9000",
		Runtime:           sandbox.NewContainerd(sandbox.Config{LatencyScale: 0, NodeIP: [4]byte{10, 0, 0, 1}, Seed: 1}),
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		HeartbeatInterval: 10 * time.Millisecond,
		Images:            images,
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func testFn() core.Function {
	return core.Function{
		Name: "f", Image: "img", Port: 8080,
		Scaling: core.DefaultScalingConfig(),
	}
}

func awaitReady(t *testing.T, cp *fakeCP, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cp.mu.Lock()
		got := len(cp.ready)
		cp.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("control plane never saw %d ready sandboxes", n)
}

func TestWorkerRegistersAndHeartbeats(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	testWorker(t, tr, "cp")
	cp.mu.Lock()
	if len(cp.registered) != 1 || cp.registered[0].Name != "w1" {
		t.Errorf("registered = %+v", cp.registered)
	}
	cp.mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	cp.mu.Lock()
	hb := cp.heartbeats
	cp.mu.Unlock()
	if hb < 2 {
		t.Errorf("heartbeats = %d, want several", hb)
	}
}

func TestWorkerCreateInvokeKill(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")

	req := proto.CreateSandboxRequest{SandboxID: 42, Function: testFn()}
	ctx := context.Background()
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatalf("create: %v", err)
	}
	awaitReady(t, cp, 1)
	cp.mu.Lock()
	ev := cp.ready[0]
	cp.mu.Unlock()
	if ev.SandboxID != 42 || ev.Function != "f" || ev.Addr != w.Addr() {
		t.Errorf("ready event = %+v", ev)
	}
	if w.SandboxCount() != 1 {
		t.Errorf("SandboxCount = %d", w.SandboxCount())
	}

	// Invoke through the proxy hop.
	inv := proto.InvokeSandboxRequest{SandboxID: 42, Function: "f", Payload: []byte("x")}
	respB, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal())
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !bytes.Equal(respB, []byte("ran:x")) {
		t.Errorf("resp = %q", respB)
	}

	// List reflects the sandbox.
	listB, err := tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := proto.UnmarshalSandboxList(listB)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sandboxes) != 1 || list.Sandboxes[0].ID != 42 {
		t.Errorf("list = %+v", list.Sandboxes)
	}

	// Kill removes it.
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(42)); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if w.SandboxCount() != 0 {
		t.Errorf("SandboxCount after kill = %d", w.SandboxCount())
	}
	// Invoking a killed sandbox fails.
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal()); err == nil {
		t.Errorf("invoke on killed sandbox should fail")
	}
}

func TestWorkerResourceAccounting(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	fn := testFn()
	fn.Scaling.CPUMilli = 500
	fn.Scaling.MemoryMB = 1024
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		req := proto.CreateSandboxRequest{SandboxID: core.SandboxID(i), Function: fn}
		if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	awaitReady(t, cp, 3)
	util := w.utilization()
	if util.CPUMilliUsed != 1500 || util.MemoryMBUsed != 3072 {
		t.Errorf("util = %+v, want cpu=1500 mem=3072", util)
	}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(2)); err != nil {
		t.Fatal(err)
	}
	util = w.utilization()
	if util.CPUMilliUsed != 1000 || util.MemoryMBUsed != 2048 {
		t.Errorf("util after kill = %+v", util)
	}
}

func TestWorkerCrashSandboxNotifiesCP(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	req := proto.CreateSandboxRequest{SandboxID: 7, Function: testFn()}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, cp, 1)
	if err := w.CrashSandbox(7); err != nil {
		t.Fatalf("crash: %v", err)
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if len(cp.crashed) != 1 || cp.crashed[0].SandboxID != 7 {
		t.Errorf("crash events = %+v", cp.crashed)
	}
}

func TestWorkerStopRejectsWork(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	w.Stop()
	req := proto.CreateSandboxRequest{SandboxID: 1, Function: testFn()}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err == nil {
		t.Errorf("create on stopped worker should fail (listener closed)")
	}
	// Double stop is a no-op.
	w.Stop()
}

func TestWorkerUnknownMethod(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	if _, err := tr.Call(context.Background(), w.Addr(), "wn.Bogus", nil); err == nil {
		t.Errorf("unknown method should fail")
	}
}

func TestImageRegistryDefaultEcho(t *testing.T) {
	r := NewImageRegistry()
	h := r.Lookup("unregistered")
	out, err := h([]byte("echo"))
	if err != nil || !bytes.Equal(out, []byte("echo")) {
		t.Errorf("default handler = %q, %v", out, err)
	}
	r.Register("img", func([]byte) ([]byte, error) { return []byte("custom"), nil })
	out, _ = r.Lookup("img")(nil)
	if !bytes.Equal(out, []byte("custom")) {
		t.Errorf("registered handler not used")
	}
}

// TestWorkerConcurrentInvokeAndChurn hammers the lock-free dispatch
// path: parallel invocations race sandbox creation, kills, crashes,
// list/utilization reads, and heartbeats. Run with -race, it locks in
// the copy-on-write dispatch map and atomic in-flight counters.
func TestWorkerConcurrentInvokeAndChurn(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	ctx := context.Background()

	// A stable population of sandboxes that invocations always hit.
	for i := 1; i <= 8; i++ {
		req := proto.CreateSandboxRequest{SandboxID: core.SandboxID(i), Function: testFn()}
		if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	awaitReady(t, cp, 8)

	const iters = 200
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	// Parallel invocations across the stable sandboxes.
	for g := 0; g < 4; g++ {
		g := g
		run(func(i int) {
			inv := proto.InvokeSandboxRequest{SandboxID: core.SandboxID(1 + (g*iters+i)%8), Function: "f", Payload: []byte("x")}
			if _, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal()); err != nil {
				t.Errorf("invoke: %v", err)
			}
		})
	}
	// Churn on a separate ID range: create, then kill or crash.
	run(func(i int) {
		id := core.SandboxID(100 + i)
		req := proto.CreateSandboxRequest{SandboxID: id, Function: testFn()}
		_, _ = tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal())
		if i%2 == 0 {
			_, _ = tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(id))
		} else {
			_ = w.CrashSandbox(id)
		}
	})
	// Reads concurrent with the churn.
	run(func(int) {
		w.SandboxCount()
		w.ReadySandboxIDs()
		w.utilization()
		_, _ = tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	})
	wg.Wait()

	// The stable sandboxes survived the churn and still serve, and
	// every in-flight slot was released.
	if w.SandboxCount() < 8 {
		t.Errorf("SandboxCount = %d, want >= 8", w.SandboxCount())
	}
	if n := w.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after churn, want 0", n)
	}
	inv := proto.InvokeSandboxRequest{SandboxID: 3, Function: "f", Payload: []byte("y")}
	respB, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal())
	if err != nil || !bytes.Equal(respB, []byte("ran:y")) {
		t.Errorf("post-churn invoke = %q, %v", respB, err)
	}
}

func testWorkerWith(t *testing.T, tr *transport.InProc, cpAddr string, mut func(*Config)) *Worker {
	t.Helper()
	images := NewImageRegistry()
	images.Register("img", func(p []byte) ([]byte, error) {
		return append([]byte("ran:"), p...), nil
	})
	cfg := Config{
		Node: core.WorkerNode{
			ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000,
			CPUMilli: 10000, MemoryMB: 65536,
		},
		Addr:              "10.0.0.1:9000",
		Runtime:           sandbox.NewContainerd(sandbox.Config{LatencyScale: 0, NodeIP: [4]byte{10, 0, 0, 1}, Seed: 1}),
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		HeartbeatInterval: 10 * time.Millisecond,
		Images:            images,
	}
	if mut != nil {
		mut(&cfg)
	}
	w := New(cfg)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func awaitPrewarmPool(t *testing.T, w *Worker, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.Metrics().Gauge("prewarm_pool_size").Value() >= int64(n) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("prewarm pool never reached %d (at %d)",
		n, w.Metrics().Gauge("prewarm_pool_size").Value())
}

// TestWorkerBatchCreate locks in the batched create path: one RPC
// carries many create instructions, all sandboxes come up, and readiness
// reports flow back (coalesced or singleton, both legal).
func TestWorkerBatchCreate(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")

	batch := proto.CreateSandboxBatch{}
	for i := 1; i <= 8; i++ {
		batch.Creates = append(batch.Creates, proto.CreateSandboxRequest{
			SandboxID: core.SandboxID(i), Function: testFn(),
		})
	}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandboxBatch, batch.Marshal()); err != nil {
		t.Fatalf("batch create: %v", err)
	}
	awaitReady(t, cp, 8)
	if w.SandboxCount() != 8 {
		t.Errorf("SandboxCount = %d, want 8", w.SandboxCount())
	}
	cp.mu.Lock()
	seen := make(map[core.SandboxID]bool)
	for _, ev := range cp.ready {
		seen[ev.SandboxID] = true
	}
	cp.mu.Unlock()
	for i := 1; i <= 8; i++ {
		if !seen[core.SandboxID(i)] {
			t.Errorf("sandbox %d never reported ready", i)
		}
	}
	if w.Metrics().Histogram("ready_batch_size").Count() == 0 {
		t.Errorf("ready_batch_size histogram empty")
	}
	if w.Metrics().Counter("create_batches_received").Value() != 1 {
		t.Errorf("create_batches_received = %d, want 1",
			w.Metrics().Counter("create_batches_received").Value())
	}
}

// TestWorkerPrewarmClaim locks in the pre-warm pool: a cold start claims
// an initialized sandbox (skipping runtime creation), the claimed
// sandbox serves invocations under the control plane's ID, teardown goes
// through the runtime's own handle, and the pool refills after a claim.
func TestWorkerPrewarmClaim(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) { c.Prewarm = 2 })
	awaitPrewarmPool(t, w, 2)

	ctx := context.Background()
	req := proto.CreateSandboxRequest{SandboxID: 42, Function: testFn()}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatalf("create: %v", err)
	}
	awaitReady(t, cp, 1)
	if got := w.Metrics().Counter("prewarm_hits").Value(); got != 1 {
		t.Errorf("prewarm_hits = %d, want 1", got)
	}
	if got := w.Metrics().Counter("prewarm_misses").Value(); got != 0 {
		t.Errorf("prewarm_misses = %d, want 0", got)
	}

	// The claimed sandbox serves under the CP-assigned ID with the
	// claiming function's handler.
	inv := proto.InvokeSandboxRequest{SandboxID: 42, Function: "f", Payload: []byte("x")}
	respB, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal())
	if err != nil || !bytes.Equal(respB, []byte("ran:x")) {
		t.Errorf("invoke on claimed sandbox = %q, %v", respB, err)
	}
	// List reports the rebound identity, not the prewarm placeholder.
	listB, err := tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := proto.UnmarshalSandboxList(listB)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sandboxes) != 1 || list.Sandboxes[0].ID != 42 || list.Sandboxes[0].Function != "f" {
		t.Errorf("list = %+v", list.Sandboxes)
	}

	// The pool refills back to its configured size.
	awaitPrewarmPool(t, w, 2)

	// Teardown via the runtime's own handle succeeds.
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(42)); err != nil {
		t.Fatalf("kill claimed sandbox: %v", err)
	}
	if w.SandboxCount() != 0 {
		t.Errorf("SandboxCount after kill = %d", w.SandboxCount())
	}
}

// TestWorkerPrewarmRuntimeMismatch: a function pinned to a different
// runtime must not claim from this node's pool.
func TestWorkerPrewarmRuntimeMismatch(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) { c.Prewarm = 1 })
	awaitPrewarmPool(t, w, 1)

	fn := testFn()
	fn.Runtime = "firecracker" // node runs containerd
	req := proto.CreateSandboxRequest{SandboxID: 7, Function: fn}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, cp, 1)
	if got := w.Metrics().Counter("prewarm_hits").Value(); got != 0 {
		t.Errorf("prewarm_hits = %d, want 0 (runtime mismatch)", got)
	}
	if got := w.Metrics().Counter("prewarm_misses").Value(); got != 1 {
		t.Errorf("prewarm_misses = %d, want 1", got)
	}
	if w.SandboxCount() != 1 {
		t.Errorf("mismatched function's sandbox never created")
	}
}
