package worker

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/sandbox"
	"dirigent/internal/transport"
)

// fakeCP records worker → control-plane calls.
type fakeCP struct {
	mu         sync.Mutex
	registered []core.WorkerNode
	heartbeats int
	ready      []proto.SandboxEvent
	crashed    []proto.SandboxEvent
}

func startFakeCP(t *testing.T, tr *transport.InProc, addr string) *fakeCP {
	t.Helper()
	cp := &fakeCP{}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		switch method {
		case proto.MethodRegisterWorker:
			req, err := proto.UnmarshalRegisterWorkerRequest(payload)
			if err != nil {
				return nil, err
			}
			cp.registered = append(cp.registered, req.Worker)
		case proto.MethodWorkerHeartbeat:
			cp.heartbeats++
		case proto.MethodSandboxReady:
			ev, err := proto.UnmarshalSandboxEvent(payload)
			if err != nil {
				return nil, err
			}
			cp.ready = append(cp.ready, *ev)
		case proto.MethodSandboxReadyBatch:
			batch, err := proto.UnmarshalSandboxEventBatch(payload)
			if err != nil {
				return nil, err
			}
			cp.ready = append(cp.ready, batch.Events...)
		case proto.MethodSandboxCrashed:
			ev, err := proto.UnmarshalSandboxEvent(payload)
			if err != nil {
				return nil, err
			}
			cp.crashed = append(cp.crashed, *ev)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return cp
}

func testWorker(t *testing.T, tr *transport.InProc, cpAddr string) *Worker {
	t.Helper()
	images := NewImageRegistry()
	images.Register("img", func(p []byte) ([]byte, error) {
		return append([]byte("ran:"), p...), nil
	})
	w := New(Config{
		Node: core.WorkerNode{
			ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000,
			CPUMilli: 10000, MemoryMB: 65536,
		},
		Addr:              "10.0.0.1:9000",
		Runtime:           sandbox.NewContainerd(sandbox.Config{LatencyScale: 0, NodeIP: [4]byte{10, 0, 0, 1}, Seed: 1}),
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		HeartbeatInterval: 10 * time.Millisecond,
		Images:            images,
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func testFn() core.Function {
	return core.Function{
		Name: "f", Image: "img", Port: 8080,
		Scaling: core.DefaultScalingConfig(),
	}
}

func awaitReady(t *testing.T, cp *fakeCP, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cp.mu.Lock()
		got := len(cp.ready)
		cp.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("control plane never saw %d ready sandboxes", n)
}

func TestWorkerRegistersAndHeartbeats(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	testWorker(t, tr, "cp")
	cp.mu.Lock()
	if len(cp.registered) != 1 || cp.registered[0].Name != "w1" {
		t.Errorf("registered = %+v", cp.registered)
	}
	cp.mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	cp.mu.Lock()
	hb := cp.heartbeats
	cp.mu.Unlock()
	if hb < 2 {
		t.Errorf("heartbeats = %d, want several", hb)
	}
}

func TestWorkerCreateInvokeKill(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")

	req := proto.CreateSandboxRequest{SandboxID: 42, Function: testFn()}
	ctx := context.Background()
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatalf("create: %v", err)
	}
	awaitReady(t, cp, 1)
	cp.mu.Lock()
	ev := cp.ready[0]
	cp.mu.Unlock()
	if ev.SandboxID != 42 || ev.Function != "f" || ev.Addr != w.Addr() {
		t.Errorf("ready event = %+v", ev)
	}
	if w.SandboxCount() != 1 {
		t.Errorf("SandboxCount = %d", w.SandboxCount())
	}

	// Invoke through the proxy hop.
	inv := proto.InvokeSandboxRequest{SandboxID: 42, Function: "f", Payload: []byte("x")}
	respB, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal())
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !bytes.Equal(respB, []byte("ran:x")) {
		t.Errorf("resp = %q", respB)
	}

	// List reflects the sandbox.
	listB, err := tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := proto.UnmarshalSandboxList(listB)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sandboxes) != 1 || list.Sandboxes[0].ID != 42 {
		t.Errorf("list = %+v", list.Sandboxes)
	}

	// Kill removes it.
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(42)); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if w.SandboxCount() != 0 {
		t.Errorf("SandboxCount after kill = %d", w.SandboxCount())
	}
	// Invoking a killed sandbox fails.
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal()); err == nil {
		t.Errorf("invoke on killed sandbox should fail")
	}
}

func TestWorkerResourceAccounting(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	fn := testFn()
	fn.Scaling.CPUMilli = 500
	fn.Scaling.MemoryMB = 1024
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		req := proto.CreateSandboxRequest{SandboxID: core.SandboxID(i), Function: fn}
		if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	awaitReady(t, cp, 3)
	util := w.utilization()
	if util.CPUMilliUsed != 1500 || util.MemoryMBUsed != 3072 {
		t.Errorf("util = %+v, want cpu=1500 mem=3072", util)
	}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(2)); err != nil {
		t.Fatal(err)
	}
	util = w.utilization()
	if util.CPUMilliUsed != 1000 || util.MemoryMBUsed != 2048 {
		t.Errorf("util after kill = %+v", util)
	}
}

func TestWorkerCrashSandboxNotifiesCP(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	req := proto.CreateSandboxRequest{SandboxID: 7, Function: testFn()}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, cp, 1)
	if err := w.CrashSandbox(7); err != nil {
		t.Fatalf("crash: %v", err)
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if len(cp.crashed) != 1 || cp.crashed[0].SandboxID != 7 {
		t.Errorf("crash events = %+v", cp.crashed)
	}
}

func TestWorkerStopRejectsWork(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	w.Stop()
	req := proto.CreateSandboxRequest{SandboxID: 1, Function: testFn()}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err == nil {
		t.Errorf("create on stopped worker should fail (listener closed)")
	}
	// Double stop is a no-op.
	w.Stop()
}

func TestWorkerUnknownMethod(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	if _, err := tr.Call(context.Background(), w.Addr(), "wn.Bogus", nil); err == nil {
		t.Errorf("unknown method should fail")
	}
}

func TestImageRegistryDefaultEcho(t *testing.T) {
	r := NewImageRegistry()
	h := r.Lookup("unregistered")
	out, err := h([]byte("echo"))
	if err != nil || !bytes.Equal(out, []byte("echo")) {
		t.Errorf("default handler = %q, %v", out, err)
	}
	r.Register("img", func([]byte) ([]byte, error) { return []byte("custom"), nil })
	out, _ = r.Lookup("img")(nil)
	if !bytes.Equal(out, []byte("custom")) {
		t.Errorf("registered handler not used")
	}
}

// TestWorkerConcurrentInvokeAndChurn hammers the lock-free dispatch
// path: parallel invocations race sandbox creation, kills, crashes,
// list/utilization reads, and heartbeats. Run with -race, it locks in
// the copy-on-write dispatch map and atomic in-flight counters.
func TestWorkerConcurrentInvokeAndChurn(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")
	ctx := context.Background()

	// A stable population of sandboxes that invocations always hit.
	for i := 1; i <= 8; i++ {
		req := proto.CreateSandboxRequest{SandboxID: core.SandboxID(i), Function: testFn()}
		if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	awaitReady(t, cp, 8)

	const iters = 200
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	// Parallel invocations across the stable sandboxes.
	for g := 0; g < 4; g++ {
		g := g
		run(func(i int) {
			inv := proto.InvokeSandboxRequest{SandboxID: core.SandboxID(1 + (g*iters+i)%8), Function: "f", Payload: []byte("x")}
			if _, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal()); err != nil {
				t.Errorf("invoke: %v", err)
			}
		})
	}
	// Churn on a separate ID range: create, then kill or crash.
	run(func(i int) {
		id := core.SandboxID(100 + i)
		req := proto.CreateSandboxRequest{SandboxID: id, Function: testFn()}
		_, _ = tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal())
		if i%2 == 0 {
			_, _ = tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(id))
		} else {
			_ = w.CrashSandbox(id)
		}
	})
	// Reads concurrent with the churn.
	run(func(int) {
		w.SandboxCount()
		w.ReadySandboxIDs()
		w.utilization()
		_, _ = tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	})
	wg.Wait()

	// The stable sandboxes survived the churn and still serve, and
	// every in-flight slot was released.
	if w.SandboxCount() < 8 {
		t.Errorf("SandboxCount = %d, want >= 8", w.SandboxCount())
	}
	if n := w.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after churn, want 0", n)
	}
	inv := proto.InvokeSandboxRequest{SandboxID: 3, Function: "f", Payload: []byte("y")}
	respB, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal())
	if err != nil || !bytes.Equal(respB, []byte("ran:y")) {
		t.Errorf("post-churn invoke = %q, %v", respB, err)
	}
}

func testWorkerWith(t *testing.T, tr *transport.InProc, cpAddr string, mut func(*Config)) *Worker {
	t.Helper()
	images := NewImageRegistry()
	images.Register("img", func(p []byte) ([]byte, error) {
		return append([]byte("ran:"), p...), nil
	})
	cfg := Config{
		Node: core.WorkerNode{
			ID: 1, Name: "w1", IP: "10.0.0.1", Port: 9000,
			CPUMilli: 10000, MemoryMB: 65536,
		},
		Addr:              "10.0.0.1:9000",
		Runtime:           sandbox.NewContainerd(sandbox.Config{LatencyScale: 0, NodeIP: [4]byte{10, 0, 0, 1}, Seed: 1}),
		Transport:         tr,
		ControlPlanes:     []string{cpAddr},
		HeartbeatInterval: 10 * time.Millisecond,
		Images:            images,
	}
	if mut != nil {
		mut(&cfg)
	}
	w := New(cfg)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

func awaitPrewarmPool(t *testing.T, w *Worker, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.Metrics().Gauge("prewarm_pool_size").Value() >= int64(n) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("prewarm pool never reached %d (at %d)",
		n, w.Metrics().Gauge("prewarm_pool_size").Value())
}

// TestWorkerBatchCreate locks in the batched create path: one RPC
// carries many create instructions, all sandboxes come up, and readiness
// reports flow back (coalesced or singleton, both legal).
func TestWorkerBatchCreate(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorker(t, tr, "cp")

	batch := proto.CreateSandboxBatch{}
	for i := 1; i <= 8; i++ {
		batch.Creates = append(batch.Creates, proto.CreateSandboxRequest{
			SandboxID: core.SandboxID(i), Function: testFn(),
		})
	}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandboxBatch, batch.Marshal()); err != nil {
		t.Fatalf("batch create: %v", err)
	}
	awaitReady(t, cp, 8)
	if w.SandboxCount() != 8 {
		t.Errorf("SandboxCount = %d, want 8", w.SandboxCount())
	}
	cp.mu.Lock()
	seen := make(map[core.SandboxID]bool)
	for _, ev := range cp.ready {
		seen[ev.SandboxID] = true
	}
	cp.mu.Unlock()
	for i := 1; i <= 8; i++ {
		if !seen[core.SandboxID(i)] {
			t.Errorf("sandbox %d never reported ready", i)
		}
	}
	if w.Metrics().Histogram("ready_batch_size").Count() == 0 {
		t.Errorf("ready_batch_size histogram empty")
	}
	if w.Metrics().Counter("create_batches_received").Value() != 1 {
		t.Errorf("create_batches_received = %d, want 1",
			w.Metrics().Counter("create_batches_received").Value())
	}
}

// TestWorkerPrewarmClaim locks in the pre-warm pool: a cold start claims
// an initialized sandbox (skipping runtime creation), the claimed
// sandbox serves invocations under the control plane's ID, teardown goes
// through the runtime's own handle, and the pool refills after a claim.
func TestWorkerPrewarmClaim(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) { c.Prewarm = 2 })
	awaitPrewarmPool(t, w, 2)

	ctx := context.Background()
	req := proto.CreateSandboxRequest{SandboxID: 42, Function: testFn()}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatalf("create: %v", err)
	}
	awaitReady(t, cp, 1)
	if got := w.Metrics().Counter("prewarm_hits").Value(); got != 1 {
		t.Errorf("prewarm_hits = %d, want 1", got)
	}
	if got := w.Metrics().Counter("prewarm_misses").Value(); got != 0 {
		t.Errorf("prewarm_misses = %d, want 0", got)
	}

	// The claimed sandbox serves under the CP-assigned ID with the
	// claiming function's handler.
	inv := proto.InvokeSandboxRequest{SandboxID: 42, Function: "f", Payload: []byte("x")}
	respB, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal())
	if err != nil || !bytes.Equal(respB, []byte("ran:x")) {
		t.Errorf("invoke on claimed sandbox = %q, %v", respB, err)
	}
	// List reports the rebound identity, not the prewarm placeholder.
	listB, err := tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	if err != nil {
		t.Fatal(err)
	}
	list, err := proto.UnmarshalSandboxList(listB)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sandboxes) != 1 || list.Sandboxes[0].ID != 42 || list.Sandboxes[0].Function != "f" {
		t.Errorf("list = %+v", list.Sandboxes)
	}

	// The pool refills back to its configured size.
	awaitPrewarmPool(t, w, 2)

	// Teardown via the runtime's own handle succeeds.
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(42)); err != nil {
		t.Fatalf("kill claimed sandbox: %v", err)
	}
	if w.SandboxCount() != 0 {
		t.Errorf("SandboxCount after kill = %d", w.SandboxCount())
	}
}

// TestWorkerPrewarmRuntimeMismatch: a function pinned to a different
// runtime must not claim from this node's pool.
func TestWorkerPrewarmRuntimeMismatch(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) { c.Prewarm = 1 })
	awaitPrewarmPool(t, w, 1)

	fn := testFn()
	fn.Runtime = "firecracker" // node runs containerd
	req := proto.CreateSandboxRequest{SandboxID: 7, Function: fn}
	if _, err := tr.Call(context.Background(), w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, cp, 1)
	if got := w.Metrics().Counter("prewarm_hits").Value(); got != 0 {
		t.Errorf("prewarm_hits = %d, want 0 (runtime mismatch)", got)
	}
	if got := w.Metrics().Counter("prewarm_misses").Value(); got != 1 {
		t.Errorf("prewarm_misses = %d, want 1", got)
	}
	if w.SandboxCount() != 1 {
		t.Errorf("mismatched function's sandbox never created")
	}
}

// awaitPoolSizes polls until the per-image pool partition matches want.
func awaitPoolSizes(t *testing.T, w *Worker, want map[string]int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var got map[string]int
	for time.Now().Before(deadline) {
		got = w.PrewarmPoolSizes()
		if reflect.DeepEqual(got, want) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool partition never reached %v (at %v)", want, got)
}

// TestApportionPrewarm pins how a node splits its budget across the
// cluster-wide per-image wants.
func TestApportionPrewarm(t *testing.T) {
	const base = "prewarm/base"
	pt := func(img string, want uint32) proto.PrewarmTarget {
		return proto.PrewarmTarget{Image: img, Want: want}
	}
	for _, tc := range []struct {
		name   string
		budget int
		wants  []proto.PrewarmTarget
		want   map[string]int
	}{
		{"no wants, all base", 4, nil, map[string]int{base: 4}},
		{"zero wants, all base", 4, []proto.PrewarmTarget{pt("a", 0)}, map[string]int{base: 4}},
		{"under budget, leftover on base", 4,
			[]proto.PrewarmTarget{pt("a", 2), pt("b", 1)},
			map[string]int{"a": 2, "b": 1, base: 1}},
		{"exact budget", 3,
			[]proto.PrewarmTarget{pt("a", 2), pt("b", 1)},
			map[string]int{"a": 2, "b": 1}},
		{"oversubscribed, largest remainder wins the leftover", 4,
			[]proto.PrewarmTarget{pt("a", 5), pt("b", 4), pt("c", 3)},
			map[string]int{"a": 2, "b": 1, "c": 1}},
		{"oversubscribed, zero-want images dropped", 2,
			[]proto.PrewarmTarget{pt("a", 0), pt("b", 4)},
			map[string]int{"b": 2}},
		{"oversubscribed, tiny share rounds away", 2,
			[]proto.PrewarmTarget{pt("a", 7), pt("b", 1)},
			map[string]int{"a": 2}},
	} {
		if got := apportionPrewarm(tc.budget, tc.wants, base); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: apportionPrewarm(%d) = %v, want %v", tc.name, tc.budget, got, tc.want)
		}
	}
}

// TestWorkerPrewarmTargetsApply drives the control-plane push protocol
// end to end: a worker in static mode (whole budget on the base image —
// seed parity) receives a generation-tagged target set, repartitions the
// pool (evicting surplus base entries), serves an image-hit claim, heals
// the drained pool, ignores a stale-generation push, and reverts to the
// static partition when an empty set arrives.
func TestWorkerPrewarmTargetsApply(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) { c.Prewarm = 4 })
	ctx := context.Background()

	// Seed parity: no push yet, so the whole budget idles on the base image.
	awaitPoolSizes(t, w, map[string]int{"prewarm/base": 4})
	if g := w.PrewarmGen(); g != 0 {
		t.Fatalf("PrewarmGen before any push = %d, want 0", g)
	}

	push := func(gen uint64, targets ...proto.PrewarmTarget) {
		t.Helper()
		msg := proto.PrewarmTargets{Gen: gen, Targets: targets}
		if _, err := tr.Call(ctx, w.Addr(), proto.MethodPrewarmTargets, msg.Marshal()); err != nil {
			t.Fatalf("push gen %d: %v", gen, err)
		}
	}
	push(7, proto.PrewarmTarget{Image: "img-a", Want: 2}, proto.PrewarmTarget{Image: "img-b", Want: 1})
	awaitPoolSizes(t, w, map[string]int{"img-a": 2, "img-b": 1, "prewarm/base": 1})
	if g := w.PrewarmGen(); g != 7 {
		t.Errorf("PrewarmGen = %d, want 7", g)
	}
	if ev := w.Metrics().Counter("prewarm_evictions").Value(); ev != 3 {
		t.Errorf("evictions after repartition = %d, want 3 (surplus base entries)", ev)
	}

	// A cold start for img-a claims from its dedicated pool: an image hit,
	// and the drained slot heals back.
	fn := core.Function{Name: "fa", Image: "img-a", Port: 8080, Scaling: core.DefaultScalingConfig()}
	req := proto.CreateSandboxRequest{SandboxID: 42, Function: fn}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, cp, 1)
	if got := w.Metrics().Counter("prewarm_image_hits").Value(); got != 1 {
		t.Errorf("prewarm_image_hits = %d, want 1", got)
	}
	awaitPoolSizes(t, w, map[string]int{"img-a": 2, "img-b": 1, "prewarm/base": 1})

	// A stale generation must not regress the partition.
	push(6, proto.PrewarmTarget{Image: "img-z", Want: 4})
	awaitPoolSizes(t, w, map[string]int{"img-a": 2, "img-b": 1, "prewarm/base": 1})
	if g := w.PrewarmGen(); g != 7 {
		t.Errorf("PrewarmGen after stale push = %d, want 7", g)
	}

	// An empty target set reverts to the static partition (predictor went
	// quiet): per-image pools are evicted and the base pool refills.
	push(8)
	awaitPoolSizes(t, w, map[string]int{"prewarm/base": 4})
	if g := w.PrewarmGen(); g != 8 {
		t.Errorf("PrewarmGen = %d, want 8", g)
	}
}

// TestWorkerConcurrentPrewarmEvictionClaim races memory-pressure
// eviction (real sandboxes charging allocation) against pool claims,
// kills, and refills, then checks pool-entry conservation: every filled
// entry is claimed, evicted, or still pooled — never two of them. Run
// under -race by the CI stress step.
func TestWorkerConcurrentPrewarmEvictionClaim(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) {
		c.Prewarm = 8
		c.Node.MemoryMB = 1536 // pool (8×128) + 4 sandboxes fill the node
	})
	ctx := context.Background()
	awaitPrewarmPool(t, w, 8)

	// Race: 8 cold starts charge 1024 MB against a full 1024 MB pool, so
	// claims drain the pool from the tail while eviction trims it from the
	// head, with misses spawning refills throughout.
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			req := proto.CreateSandboxRequest{SandboxID: core.SandboxID(id), Function: testFn()}
			if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
				t.Errorf("create %d: %v", id, err)
			}
		}(i)
	}
	wg.Wait()
	awaitReady(t, cp, 8)
	if hits := w.Metrics().Counter("prewarm_base_hits").Value(); hits == 0 {
		t.Errorf("no claims hit the pool during the race")
	}
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(core.SandboxID(id))); err != nil {
				t.Errorf("kill %d: %v", id, err)
			}
		}(i)
	}
	wg.Wait()

	// Deterministic pressure: ensure at least one pooled entry exists (a
	// miss heals the pool if the race left it empty), then fill the node
	// with runtime-mismatched sandboxes (never claim) so the pool must
	// yield to real allocations.
	req := proto.CreateSandboxRequest{SandboxID: 1000, Function: testFn()}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitPrewarmPool(t, w, 1)
	mismatched := testFn()
	mismatched.Runtime = "firecracker"
	for i := 1001; i <= 1011; i++ {
		req := proto.CreateSandboxRequest{SandboxID: core.SandboxID(i), Function: mismatched}
		if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandbox, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for w.Metrics().Counter("prewarm_evictions").Value() == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("memory pressure never evicted a pooled entry")
		}
		time.Sleep(time.Millisecond)
	}

	// Conservation: once fills settle, filled == claimed + evicted + pooled.
	deadline = time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		pending := len(w.prewarmPending)
		pooled := 0
		for _, pool := range w.prewarmPools {
			pooled += len(pool)
		}
		w.mu.Unlock()
		filled := w.Metrics().Counter("prewarm_filled").Value()
		claimed := w.Metrics().Counter("prewarm_image_hits").Value() +
			w.Metrics().Counter("prewarm_base_hits").Value()
		evicted := w.Metrics().Counter("prewarm_evictions").Value()
		if pending == 0 && filled == claimed+evicted+int64(pooled) {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("pool conservation violated: filled=%d claimed=%d evicted=%d pooled=%d pending=%d",
				filled, claimed, evicted, pooled, pending)
		}
		time.Sleep(time.Millisecond)
	}
}
