package worker

import (
	"context"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// TestConcurrentWorkerBatchedCreates hammers the worker's batched
// cold-start machinery under -race: parallel batch-create RPCs feeding
// the bounded creation pool, pre-warm claims racing pool refills, kills
// and crashes racing readiness reports, and invocations racing all of
// it. It locks in that the creation semaphore, the pre-warm pool, and
// the readiness-flusher handoff need no lock shared with dispatch.
func TestConcurrentWorkerBatchedCreates(t *testing.T) {
	const iters = 60

	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	w := testWorkerWith(t, tr, "cp", func(c *Config) {
		c.Prewarm = 4
		c.CreateConcurrency = 4
	})
	ctx := context.Background()

	// A stable population that invocations always hit.
	stable := proto.CreateSandboxBatch{}
	for i := 1; i <= 8; i++ {
		stable.Creates = append(stable.Creates, proto.CreateSandboxRequest{
			SandboxID: core.SandboxID(i), Function: testFn(),
		})
	}
	if _, err := tr.Call(ctx, w.Addr(), proto.MethodCreateSandboxBatch, stable.Marshal()); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, cp, 8)

	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}

	// Batched creates on churn ID ranges, some claiming prewarm, then
	// kill or crash what came up.
	for g := 0; g < 3; g++ {
		g := g
		run(func(i int) {
			base := core.SandboxID(1000 + (g*iters+i)*4)
			batch := proto.CreateSandboxBatch{}
			for e := 0; e < 4; e++ {
				fn := testFn()
				if e%2 == 1 {
					// Half pinned to a mismatched runtime: forced misses
					// race the claims.
					fn.Runtime = "firecracker"
				}
				batch.Creates = append(batch.Creates, proto.CreateSandboxRequest{
					SandboxID: base + core.SandboxID(e), Function: fn,
				})
			}
			_, _ = tr.Call(ctx, w.Addr(), proto.MethodCreateSandboxBatch, batch.Marshal())
			if i%2 == 0 {
				_, _ = tr.Call(ctx, w.Addr(), proto.MethodKillSandbox, EncodeSandboxID(base))
			} else {
				_ = w.CrashSandbox(base + 1)
			}
		})
	}
	// Invocations across the stable sandboxes.
	for g := 0; g < 2; g++ {
		g := g
		run(func(i int) {
			inv := proto.InvokeSandboxRequest{
				SandboxID: core.SandboxID(1 + (g*iters+i)%8), Function: "f", Payload: []byte("x"),
			}
			if _, err := tr.Call(ctx, w.Addr(), proto.MethodInvokeSandbox, inv.Marshal()); err != nil {
				t.Errorf("invoke: %v", err)
			}
		})
	}
	// Reads racing everything.
	run(func(int) {
		w.SandboxCount()
		w.ReadySandboxIDs()
		w.InFlight()
		w.utilization()
		_, _ = tr.Call(ctx, w.Addr(), proto.MethodListSandboxes, nil)
	})

	wg.Wait()

	if w.SandboxCount() < 8 {
		t.Errorf("SandboxCount = %d, want >= 8 (stable set lost)", w.SandboxCount())
	}
	if n := w.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after churn, want 0", n)
	}
	// The pool must converge back to its configured size once churn ends.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.Metrics().Gauge("prewarm_pool_size").Value() == 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := w.Metrics().Gauge("prewarm_pool_size").Value(); got != 4 {
		t.Errorf("prewarm pool = %d after churn, want 4", got)
	}
	if w.Metrics().Counter("prewarm_hits").Value() == 0 {
		t.Errorf("prewarm_hits = 0 — claims never exercised")
	}
	if w.Metrics().Counter("prewarm_misses").Value() == 0 {
		t.Errorf("prewarm_misses = 0 — mismatch path never exercised")
	}
}
