// Package worker implements the Dirigent worker daemon. It registers the
// node with the control plane, sends periodic heartbeats with resource
// utilization, creates and tears down sandboxes on control-plane
// instruction via the sandbox.Runtime three-call interface, issues health
// probes to newly created sandboxes, notifies the control plane when a
// sandbox becomes ready or crashes, and dispatches proxied invocations
// into sandboxes (paper §3.1, §3.3, §4).
//
// The cold-start path is batched and pipelined: create instructions
// arrive per-worker batches (one RPC per autoscale sweep), run through a
// bounded creation pool, optionally claim from a pre-warm pool of
// initialized-but-unassigned sandboxes (Config.Prewarm), and report
// readiness in coalesced batches — whatever became ready while the
// previous report was in flight ships in one RPC.
package worker

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/relay"
	"dirigent/internal/sandbox"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Handler is a function implementation: it receives the invocation payload
// and returns the response body.
type Handler func(payload []byte) ([]byte, error)

// ImageRegistry maps container-image URLs to function implementations,
// standing in for the user code baked into images. Images without a
// registered handler echo their payload.
type ImageRegistry struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewImageRegistry returns an empty registry.
func NewImageRegistry() *ImageRegistry {
	return &ImageRegistry{handlers: make(map[string]Handler)}
}

// Register associates image with handler.
func (r *ImageRegistry) Register(image string, h Handler) {
	r.mu.Lock()
	r.handlers[image] = h
	r.mu.Unlock()
}

// Lookup returns the handler for image, or an echo handler.
func (r *ImageRegistry) Lookup(image string) Handler {
	r.mu.RLock()
	h := r.handlers[image]
	r.mu.RUnlock()
	if h == nil {
		return func(p []byte) ([]byte, error) { return p, nil }
	}
	return h
}

// Config parameterizes a worker daemon.
type Config struct {
	// Node identifies this worker; Port/IP form its RPC address.
	Node core.WorkerNode
	// Addr is the transport address the daemon listens on.
	Addr string
	// Runtime is the sandbox runtime (containerd / firecracker).
	Runtime sandbox.Runtime
	// Transport carries RPCs.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Relays, when non-empty, switches the worker's liveness traffic
	// (register, heartbeat) to relay mode: RPCs go to the first relay
	// that accepts them, in preference order, falling back to the direct
	// control plane path when every relay refuses. Empty keeps the
	// seed's direct WN → CP protocol exactly (the -relay off ablation).
	Relays []string
	// Clock abstracts time; nil selects the wall clock.
	Clock clock.Clock
	// HeartbeatInterval is the WN → CP liveness period.
	HeartbeatInterval time.Duration
	// Images resolves function implementations; nil echoes payloads.
	Images *ImageRegistry
	// Metrics receives worker telemetry; nil creates a private registry.
	Metrics *telemetry.Registry
	// CreateConcurrency bounds how many sandbox creations run inside the
	// runtime at once (the creation pool). Batched create RPCs can carry
	// hundreds of instructions; the pool keeps the runtime's kernel-lock
	// section from being hammered by unbounded goroutines. 0 selects the
	// default (8).
	CreateConcurrency int
	// Prewarm is the node's pre-warm pool *budget*: at most this many
	// initialized-but-unassigned sandboxes are kept on the node. Until the
	// control plane pushes per-image targets the whole budget warms the
	// generic PrewarmImage (the seed's static pool, and the behavior of
	// the predictive-prewarm-off ablation); with targets applied, the
	// budget is partitioned across the predictor's hot images, leftover
	// capacity staying on the base image. A cold start whose function has
	// a matching runtime spec claims an entry — by image first, falling
	// back to base — instead of creating from scratch; pools refill
	// asynchronously after each claim. 0 disables pre-warming.
	Prewarm int
	// PrewarmImage is the image prewarm sandboxes boot from (a generic
	// base snapshot); empty selects "prewarm/base".
	PrewarmImage string
	// PrewarmMemoryMB is the per-entry memory estimate used for pool
	// eviction under memory pressure: when real sandbox allocations plus
	// the pool estimate exceed the node's capacity, idle pool entries are
	// evicted LRU so pre-warming never starves real sandboxes. 0 selects
	// the default (128). Pressure eviction is skipped entirely when
	// Node.MemoryMB is 0 (capacity unknown).
	PrewarmMemoryMB int
	// Cache, when non-nil, is the node's image/snapshot cache; its digest
	// rides heartbeats so the control plane can place cold starts onto
	// nodes that already hold the image (cache-locality-aware placement).
	Cache *sandbox.ImageCache
}

// Worker is a running worker daemon.
type Worker struct {
	cfg      Config
	clk      clock.Clock
	cp       *cpclient.Client
	live     *relay.Client // non-nil in relay mode; carries register + heartbeat
	listener transport.Listener
	metrics  *telemetry.Registry

	// mu guards registry mutations and resource accounting. The
	// invocation dispatch path never takes it: the ready map is
	// published copy-on-write through ready, mirroring the data plane's
	// endpoint snapshots, and per-sandbox in-flight counts are atomics
	// on the readySandbox itself.
	mu        sync.Mutex
	ready     atomic.Pointer[map[core.SandboxID]*readySandbox]
	creating  int
	allocCPU  int
	allocMem  int
	functions map[core.SandboxID]core.Function

	// createSem is the bounded creation pool: at most CreateConcurrency
	// Runtime.Create calls run at once, regardless of how many batched
	// create instructions are queued.
	createSem chan struct{}

	// Pre-warm pools: initialized-but-unassigned instances keyed by the
	// image they were warmed for, guarded by mu. Entries append in
	// completion order, so index 0 is each pool's least-recently-idle
	// entry (the LRU eviction victim) and claims pop from the tail.
	// prewarmPending counts fills in flight per image so claims don't
	// over-refill; prewarmTargets is the per-image partition of the
	// budget (nil until the first control-plane push: static mode, the
	// whole budget on the base image).
	prewarmPools   map[string][]poolEntry
	prewarmPending map[string]int
	prewarmTargets map[string]int
	prewarmGen     uint64
	prewarmSeq     atomic.Uint64

	// Readiness report coalescing: events queue under readyEvMu and a
	// single flusher drains whatever accumulated while its previous RPC
	// was in flight into one SandboxReadyBatch call.
	readyEvMu    sync.Mutex
	readyEvs     []proto.SandboxEvent
	readyFlusher bool

	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped bool

	mPrewarmHits      *telemetry.Counter
	mPrewarmMisses    *telemetry.Counter
	mPrewarmImageHits *telemetry.Counter
	mPrewarmBaseHits  *telemetry.Counter
	mPrewarmEvicted   *telemetry.Counter
	mReadyBatch       *telemetry.Histogram
	mCreateWait       *telemetry.Histogram
}

// poolEntry is one pre-warmed instance plus the moment it became idle,
// the ordering key for LRU eviction.
type poolEntry struct {
	inst      *sandbox.Instance
	idleSince time.Time
}

type readySandbox struct {
	inst    *sandbox.Instance
	handler Handler
	// rtID is the runtime's handle for the instance; it differs from the
	// dispatch-map key when the sandbox was claimed from the pre-warm
	// pool (which mints its own IDs before a control-plane ID exists).
	rtID     core.SandboxID
	inFlight atomic.Int64
}

// readyMap returns the current copy-on-write sandbox dispatch map.
// The map is immutable after publication; never mutate it.
func (w *Worker) readyMap() map[core.SandboxID]*readySandbox {
	return *w.ready.Load()
}

// publishReadyLocked copies the dispatch map, applies mutate, and
// publishes the successor. Callers hold w.mu.
func (w *Worker) publishReadyLocked(mutate func(m map[core.SandboxID]*readySandbox)) {
	cur := w.readyMap()
	next := make(map[core.SandboxID]*readySandbox, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	mutate(next)
	w.ready.Store(&next)
}

// New creates a worker daemon (call Start to register and serve).
func New(cfg Config) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	if cfg.Images == nil {
		cfg.Images = NewImageRegistry()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.CreateConcurrency <= 0 {
		cfg.CreateConcurrency = defaultCreateConcurrency
	}
	if cfg.Prewarm < 0 {
		cfg.Prewarm = 0
	}
	if cfg.PrewarmImage == "" {
		cfg.PrewarmImage = "prewarm/base"
	}
	if cfg.PrewarmMemoryMB <= 0 {
		cfg.PrewarmMemoryMB = 128
	}
	w := &Worker{
		cfg:            cfg,
		clk:            cfg.Clock,
		cp:             cpclient.New(cfg.Transport, cfg.ControlPlanes),
		metrics:        cfg.Metrics,
		createSem:      make(chan struct{}, cfg.CreateConcurrency),
		functions:      make(map[core.SandboxID]core.Function),
		prewarmPools:   make(map[string][]poolEntry),
		prewarmPending: make(map[string]int),
		stopCh:         make(chan struct{}),
	}
	if len(cfg.Relays) > 0 {
		w.live = relay.NewClient(cfg.Transport, cfg.Relays, cfg.ControlPlanes)
		w.live.Fallbacks = cfg.Metrics.Counter("relay_fallbacks")
	}
	empty := make(map[core.SandboxID]*readySandbox)
	w.ready.Store(&empty)
	w.mPrewarmHits = w.metrics.Counter("prewarm_hits")
	w.mPrewarmMisses = w.metrics.Counter("prewarm_misses")
	w.mPrewarmImageHits = w.metrics.Counter("prewarm_image_hits")
	w.mPrewarmBaseHits = w.metrics.Counter("prewarm_base_hits")
	w.mPrewarmEvicted = w.metrics.Counter("prewarm_evictions")
	w.mReadyBatch = w.metrics.CountHistogram("ready_batch_size")
	w.mCreateWait = w.metrics.Histogram("create_pool_wait_ms")
	return w
}

// defaultCreateConcurrency bounds concurrent runtime creations per node.
// The simulated runtimes serialize on a node-wide kernel section anyway
// (paper §4), so a small pool keeps batch bursts from spawning hundreds
// of goroutines that would all pile onto that lock.
const defaultCreateConcurrency = 8

// Start listens for control-plane RPCs, registers the worker, and begins
// heartbeating.
func (w *Worker) Start() error {
	ln, err := w.cfg.Transport.Listen(w.cfg.Addr, w.handleRPC)
	if err != nil {
		return fmt.Errorf("worker %s: %w", w.cfg.Node.Name, err)
	}
	w.listener = ln
	req := proto.RegisterWorkerRequest{Worker: w.cfg.Node}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	// Ride out CP leader elections and brief outages with capped backoff
	// instead of failing the daemon's start — "no leader right now" is a
	// transient condition in an HA control plane, on the relay path too.
	if err := w.registerWithRetry(ctx, req.Marshal()); err != nil {
		ln.Close()
		return fmt.Errorf("worker %s: register: %w", w.cfg.Node.Name, err)
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	// Fill the pre-warm pool asynchronously through the creation pool;
	// the node serves create instructions while the pool warms up.
	for i := 0; i < w.cfg.Prewarm; i++ {
		w.spawnPrewarmFill("")
	}
	return nil
}

// Stop simulates a daemon crash: it stops heartbeats and stops serving
// RPCs without deregistering, so the control plane must detect the failure
// by heartbeat timeout (paper §3.4.1, "Worker node fault tolerance").
func (w *Worker) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stopCh)
	if w.listener != nil {
		w.listener.Close()
	}
	w.wg.Wait()
	// Tear down the pre-warm pool: unlike ready sandboxes (which the
	// control plane tracks and re-drains after detecting the crash),
	// pooled instances are known only to this daemon and would leak in
	// the runtime forever.
	w.mu.Lock()
	pools := w.prewarmPools
	w.prewarmPools = make(map[string][]poolEntry)
	w.mu.Unlock()
	for _, pool := range pools {
		for _, e := range pool {
			_ = w.cfg.Runtime.Kill(e.inst.ID)
		}
	}
}

// Addr returns the worker's RPC address.
func (w *Worker) Addr() string { return w.cfg.Addr }

// Node returns the worker's identity.
func (w *Worker) Node() core.WorkerNode { return w.cfg.Node }

// Metrics returns the worker's telemetry registry.
func (w *Worker) Metrics() *telemetry.Registry { return w.metrics }

// SandboxCount returns the number of ready sandboxes.
func (w *Worker) SandboxCount() int {
	return len(w.readyMap())
}

// ReadySandboxIDs returns the IDs of all ready sandboxes, used by tests
// and failure-injection harnesses.
func (w *Worker) ReadySandboxIDs() []core.SandboxID {
	m := w.readyMap()
	ids := make([]core.SandboxID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}

// InFlight reports the number of invocations currently executing across
// all ready sandboxes, read lock-free from the per-sandbox counters.
// Used by tests and load-inspection harnesses.
func (w *Worker) InFlight() int64 {
	var total int64
	for _, rs := range w.readyMap() {
		total += rs.inFlight.Load()
	}
	return total
}

// heartbeatLoop is driven by the injected clock so simulated-time tests
// don't burn wall time.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopCh:
			return
		case <-w.clk.After(w.cfg.HeartbeatInterval):
			w.sendHeartbeat()
		}
	}
}

func (w *Worker) utilization() core.NodeUtilization {
	// The cache digest has its own lock and a memoized slice; fetch it
	// before taking w.mu to keep the registry lock hold short.
	var digest []uint64
	if w.cfg.Cache != nil {
		digest = w.cfg.Cache.Digest()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return core.NodeUtilization{
		Node:          w.cfg.Node.ID,
		CPUMilliUsed:  w.allocCPU,
		MemoryMBUsed:  w.allocMem,
		SandboxCount:  len(w.readyMap()),
		CreationQueue: w.creating,
		CacheDigest:   digest,
	}
}

func (w *Worker) sendHeartbeat() {
	hb := proto.WorkerHeartbeat{Node: w.cfg.Node.ID, Util: w.utilization()}
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.HeartbeatInterval*4)
	defer cancel()
	// Best effort; a missed heartbeat is exactly what the CP's health
	// monitor is designed to tolerate and detect.
	_, _ = w.liveCall(ctx, proto.MethodWorkerHeartbeat, hb.Marshal())
}

// registerWithRetry sends the registration over the liveness path,
// retrying with capped exponential backoff while the control plane is
// unavailable. Direct mode delegates to the cpclient's retry loop; relay
// mode wraps the relay client with the same classification.
func (w *Worker) registerWithRetry(ctx context.Context, payload []byte) error {
	if w.live == nil {
		_, err := w.cp.CallWithRetry(ctx, proto.MethodRegisterWorker, payload)
		return err
	}
	delay := 5 * time.Millisecond
	for {
		_, err := w.live.Call(ctx, proto.MethodRegisterWorker, payload)
		if err == nil || !cpclient.IsUnavailable(err) || ctx.Err() != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(delay):
		}
		if delay *= 2; delay > 100*time.Millisecond {
			delay = 100 * time.Millisecond
		}
	}
}

// liveCall routes the liveness protocol (register, heartbeat): through the
// relay tier in relay mode, directly to the control plane otherwise. Every
// other worker RPC (readiness reports, etc.) stays on the direct path —
// relays carry only the per-worker traffic that dominates at fleet scale.
func (w *Worker) liveCall(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if w.live != nil {
		return w.live.Call(ctx, method, payload)
	}
	return w.cp.Call(ctx, method, payload)
}

// handleRPC serves CP → WN and DP → WN calls.
func (w *Worker) handleRPC(method string, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodCreateSandbox:
		req, err := proto.UnmarshalCreateSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		return nil, w.createSandbox(req, false)
	case proto.MethodCreateSandboxBatch:
		batch, err := proto.UnmarshalCreateSandboxBatch(payload)
		if err != nil {
			return nil, err
		}
		w.metrics.Counter("create_batches_received").Inc()
		for i := range batch.Creates {
			if err := w.createSandbox(&batch.Creates[i], true); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case proto.MethodKillSandbox:
		d := struct{ ID core.SandboxID }{}
		if len(payload) >= 8 {
			var v uint64
			for i := 0; i < 8; i++ {
				v |= uint64(payload[i]) << (8 * i)
			}
			d.ID = core.SandboxID(v)
		}
		return nil, w.killSandbox(d.ID)
	case proto.MethodKillSandboxBatch:
		batch, err := proto.UnmarshalKillSandboxBatch(payload)
		if err != nil {
			return nil, err
		}
		w.metrics.Counter("kill_batches_received").Inc()
		// Unknown IDs (already crashed, or torn down by a racing drain)
		// must not fail the rest of the batch.
		for _, id := range batch.IDs {
			_ = w.killSandbox(id)
		}
		return nil, nil
	case proto.MethodPrewarmTargets:
		targets, err := proto.UnmarshalPrewarmTargets(payload)
		if err != nil {
			return nil, err
		}
		w.applyPrewarmTargets(targets)
		return nil, nil
	case proto.MethodListSandboxes:
		return w.listSandboxes().Marshal(), nil
	case proto.MethodInvokeSandbox:
		req, err := proto.UnmarshalInvokeSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		return w.invokeSandbox(req)
	default:
		return nil, fmt.Errorf("worker: unknown method %q", method)
	}
}

// createSandbox runs asynchronously: the RPC acks the instruction, and the
// worker notifies the control plane once the sandbox passes health probes
// (paper §3.3: "Once a sandbox is created, the worker daemon issues health
// probes ... then notifies the control plane").
//
// batched mirrors the shape of the instruction's arrival: creations from
// a batch RPC report readiness through the coalescing flusher, while
// seed-style singleton RPCs report with a synchronous singleton RPC —
// so the CreateBatch=1 ablation reproduces the seed pipeline end to end,
// including one endpoint broadcast per readiness event.
func (w *Worker) createSandbox(req *proto.CreateSandboxRequest, batched bool) error {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return fmt.Errorf("worker %s: stopped", w.cfg.Node.Name)
	}
	w.creating++
	w.allocCPU += req.Function.Scaling.CPUMilli
	w.allocMem += req.Function.Scaling.MemoryMB
	// Under memory pressure the pool yields to real sandboxes: evict idle
	// pre-warmed entries (least-recently-idle first) until the allocation
	// plus the pool's estimated footprint fits the node again.
	victims := w.evictForMemoryLocked()
	w.mu.Unlock()
	w.killEvicted(victims)

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.doCreate(req, batched)
	}()
	return nil
}

func (w *Worker) doCreate(req *proto.CreateSandboxRequest, batched bool) {
	start := w.clk.Now()

	// Fast path: claim an initialized-but-unassigned sandbox from the
	// pre-warm pool — by image first (skipping runtime creation, boot,
	// and any image pull), falling back to a generic base entry.
	if inst, imageHit := w.claimPrewarm(&req.Function); inst != nil {
		if !imageHit {
			// A base entry was warmed for the generic image: specialize it
			// for the claiming function, paying the pull/snapshot cost if
			// the image is not in the node-local cache. Runtimes without
			// the capability hand the sandbox over as-is.
			if prep, ok := w.cfg.Runtime.(sandbox.ImagePreparer); ok {
				prep.PrepareImage(req.Function.Image)
			}
		}
		w.mu.Lock()
		w.creating--
		if w.stopped {
			w.mu.Unlock()
			// Claimed out of the pool, so Stop's drain no longer covers
			// this instance: tear it down here or it leaks in the runtime.
			_ = w.cfg.Runtime.Kill(inst.ID)
			w.releaseResources(&req.Function)
			return
		}
		// Rebind the instance to the control plane's sandbox identity and
		// the claiming function; the runtime keeps its own handle (rtID)
		// for teardown.
		bound := *inst
		bound.ID = req.SandboxID
		bound.Function = req.Function.Name
		bound.Image = req.Function.Image
		rs := &readySandbox{
			inst:    &bound,
			handler: w.cfg.Images.Lookup(req.Function.Image),
			rtID:    inst.ID,
		}
		w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
			m[req.SandboxID] = rs
		})
		w.functions[req.SandboxID] = req.Function
		w.mu.Unlock()
		w.mPrewarmHits.Inc()
		w.metrics.Counter("sandboxes_created").Inc()
		w.metrics.Histogram("sandbox_creation_ms").Observe(w.clk.Since(start))
		w.reportReady(proto.SandboxEvent{
			SandboxID: req.SandboxID,
			Function:  req.Function.Name,
			Node:      w.cfg.Node.ID,
			Addr:      w.cfg.Addr,
		}, batched)
		w.spawnPrewarmFill(req.Function.Image)
		return
	}
	if w.cfg.Prewarm > 0 {
		w.mPrewarmMisses.Inc()
		// A miss means the pool is below target (drained by a burst, or
		// a fill failed earlier); let cold-start traffic heal it,
		// preferring the image that just missed.
		w.spawnPrewarmFill(req.Function.Image)
	}

	w.acquireCreateSlot()
	inst, err := w.cfg.Runtime.Create(context.Background(), sandbox.Spec{
		ID:       req.SandboxID,
		Function: req.Function,
	})
	w.releaseCreateSlot()
	w.mu.Lock()
	w.creating--
	w.mu.Unlock()
	if err != nil {
		w.releaseResources(&req.Function)
		w.metrics.Counter("sandbox_create_errors").Inc()
		return
	}
	// Health probing: wait out the boot delay, then probe.
	if inst.BootDelay > 0 {
		w.clk.Sleep(inst.BootDelay)
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	rs := &readySandbox{
		inst:    inst,
		handler: w.cfg.Images.Lookup(req.Function.Image),
		rtID:    inst.ID,
	}
	w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
		m[inst.ID] = rs
	})
	w.functions[inst.ID] = req.Function
	w.mu.Unlock()
	w.metrics.Counter("sandboxes_created").Inc()
	w.metrics.Histogram("sandbox_creation_ms").Observe(w.clk.Since(start))

	w.reportReady(proto.SandboxEvent{
		SandboxID: inst.ID,
		Function:  req.Function.Name,
		Node:      w.cfg.Node.ID,
		Addr:      w.cfg.Addr,
	}, batched)
}

// reportReady notifies the control plane of one readiness transition:
// through the coalescing flusher for batch-delivered creations, or — for
// seed-style singleton instructions — with an immediate singleton RPC,
// exactly as the seed worker did.
func (w *Worker) reportReady(ev proto.SandboxEvent, batched bool) {
	if batched {
		w.queueReady(ev)
		return
	}
	w.mReadyBatch.ObserveMs(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = w.cp.Call(ctx, proto.MethodSandboxReady, ev.Marshal())
}

// acquireCreateSlot blocks until a creation-pool slot frees up,
// recording the wait so saturation is visible in telemetry.
func (w *Worker) acquireCreateSlot() {
	select {
	case w.createSem <- struct{}{}:
		return
	default:
	}
	start := w.clk.Now()
	w.createSem <- struct{}{}
	w.mCreateWait.Observe(w.clk.Since(start))
}

func (w *Worker) releaseCreateSlot() { <-w.createSem }

// queueReady enqueues one readiness event for the control plane and
// ensures a flusher goroutine is draining the queue. The flusher sends
// whatever accumulated while its previous RPC was in flight as a single
// SandboxReadyBatch — under a creation burst the control plane sees
// O(RPCs in flight) reports instead of one RPC per sandbox, while an
// isolated creation still reports with singleton-RPC latency.
func (w *Worker) queueReady(ev proto.SandboxEvent) {
	w.readyEvMu.Lock()
	w.readyEvs = append(w.readyEvs, ev)
	if w.readyFlusher {
		w.readyEvMu.Unlock()
		return
	}
	w.readyFlusher = true
	w.readyEvMu.Unlock()
	w.wg.Add(1)
	go w.flushReadyLoop()
}

func (w *Worker) flushReadyLoop() {
	defer w.wg.Done()
	for {
		w.readyEvMu.Lock()
		evs := w.readyEvs
		w.readyEvs = nil
		if len(evs) == 0 {
			w.readyFlusher = false
			w.readyEvMu.Unlock()
			return
		}
		w.readyEvMu.Unlock()
		w.mReadyBatch.ObserveMs(float64(len(evs)))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if len(evs) == 1 {
			_, _ = w.cp.Call(ctx, proto.MethodSandboxReady, evs[0].Marshal())
		} else {
			batch := proto.SandboxEventBatch{Events: evs}
			_, _ = w.cp.Call(ctx, proto.MethodSandboxReadyBatch, batch.Marshal())
		}
		cancel()
	}
}

// claimPrewarm pops a pre-warmed instance if a pool has one and the
// function's runtime spec matches this node's runtime (an empty spec
// matches any runtime). The function's own image pool is preferred — an
// image hit needs no further work at all — before falling back to the
// generic base pool. The second return reports which case hit.
func (w *Worker) claimPrewarm(fn *core.Function) (*sandbox.Instance, bool) {
	if fn.Runtime != "" && fn.Runtime != w.cfg.Runtime.Name() {
		return nil, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if inst := w.popPoolLocked(fn.Image); inst != nil {
		w.mPrewarmImageHits.Inc()
		return inst, true
	}
	if inst := w.popPoolLocked(w.cfg.PrewarmImage); inst != nil {
		w.mPrewarmBaseHits.Inc()
		return inst, false
	}
	return nil, false
}

// popPoolLocked pops the most-recently-idle entry of one image's pool.
// Callers hold w.mu.
func (w *Worker) popPoolLocked(image string) *sandbox.Instance {
	pool := w.prewarmPools[image]
	n := len(pool)
	if n == 0 {
		return nil
	}
	inst := pool[n-1].inst
	if n == 1 {
		delete(w.prewarmPools, image)
	} else {
		w.prewarmPools[image] = pool[:n-1]
	}
	w.updatePoolGaugeLocked()
	return inst
}

// poolTotalLocked returns pooled + in-flight-fill entries across all
// images. Callers hold w.mu.
func (w *Worker) poolTotalLocked() int {
	total := 0
	for _, pool := range w.prewarmPools {
		total += len(pool)
	}
	for _, n := range w.prewarmPending {
		total += n
	}
	return total
}

func (w *Worker) updatePoolGaugeLocked() {
	total := 0
	for _, pool := range w.prewarmPools {
		total += len(pool)
	}
	w.metrics.Gauge("prewarm_pool_size").Set(int64(total))
}

// targetLocked returns image's share of the pre-warm budget: in static
// mode (no targets pushed yet) the whole budget sits on the base image.
// Callers hold w.mu.
func (w *Worker) targetLocked(image string) int {
	if w.prewarmTargets == nil {
		if image == w.cfg.PrewarmImage {
			return w.cfg.Prewarm
		}
		return 0
	}
	return w.prewarmTargets[image]
}

// pickFillImageLocked chooses which image the next pool fill should warm:
// the preferred image if it is below target, else the image with the
// largest deficit (ties broken by name for determinism). Callers hold
// w.mu.
func (w *Worker) pickFillImageLocked(prefer string) (string, bool) {
	if w.poolTotalLocked() >= w.cfg.Prewarm {
		return "", false
	}
	deficit := func(img string) int {
		return w.targetLocked(img) - len(w.prewarmPools[img]) - w.prewarmPending[img]
	}
	if prefer != "" && deficit(prefer) > 0 {
		return prefer, true
	}
	if w.prewarmTargets == nil {
		if deficit(w.cfg.PrewarmImage) > 0 {
			return w.cfg.PrewarmImage, true
		}
		return "", false
	}
	best, bestD := "", 0
	for img := range w.prewarmTargets {
		if d := deficit(img); d > bestD || (d == bestD && d > 0 && img < best) {
			best, bestD = img, d
		}
	}
	return best, bestD > 0
}

// spawnPrewarmFill tops the pre-warm pools back up toward their targets
// with one asynchronous creation, preferring the given image (the one a
// claim just drained or missed), if the budget has room and some image is
// below target.
func (w *Worker) spawnPrewarmFill(prefer string) {
	if w.cfg.Prewarm <= 0 {
		return
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	image, ok := w.pickFillImageLocked(prefer)
	if !ok {
		w.mu.Unlock()
		return
	}
	w.prewarmPending[image]++
	w.mu.Unlock()
	w.wg.Add(1)
	go w.fillPrewarm(image)
}

func (w *Worker) fillPrewarm(image string) {
	defer w.wg.Done()
	// Pre-warm IDs live in their own range so they can never collide
	// with control-plane-minted sandbox IDs.
	id := core.SandboxID(1<<62 | w.prewarmSeq.Add(1))
	spec := sandbox.Spec{
		ID: id,
		Function: core.Function{
			Name:    "_prewarm",
			Image:   image,
			Port:    1,
			Runtime: w.cfg.Runtime.Name(),
		},
	}
	w.acquireCreateSlot()
	inst, err := w.cfg.Runtime.Create(context.Background(), spec)
	w.releaseCreateSlot()
	if err != nil {
		w.mu.Lock()
		w.decPendingLocked(image)
		w.mu.Unlock()
		w.metrics.Counter("prewarm_create_errors").Inc()
		return
	}
	// The pool holds fully initialized sandboxes: boot completes here, at
	// fill time — for a per-image pool that includes the image pull, which
	// is exactly the work an image-hit claim skips.
	if inst.BootDelay > 0 {
		w.clk.Sleep(inst.BootDelay)
	}
	w.mu.Lock()
	w.decPendingLocked(image)
	// Targets may have shifted while the fill was in flight (a push, or
	// static mode resumed): surplus entries are torn down, not pooled.
	if w.stopped || len(w.prewarmPools[image]) >= w.targetLocked(image) {
		w.mu.Unlock()
		_ = w.cfg.Runtime.Kill(inst.ID)
		return
	}
	w.prewarmPools[image] = append(w.prewarmPools[image], poolEntry{inst: inst, idleSince: w.clk.Now()})
	w.updatePoolGaugeLocked()
	w.mu.Unlock()
	w.metrics.Counter("prewarm_filled").Inc()
}

func (w *Worker) decPendingLocked(image string) {
	if w.prewarmPending[image] <= 1 {
		delete(w.prewarmPending, image)
	} else {
		w.prewarmPending[image]--
	}
}

// applyPrewarmTargets installs a control-plane push: the cluster-wide
// per-image wants are apportioned to this node's budget, surplus idle
// entries are evicted (least-recently-idle first), and deficit pools are
// refilled asynchronously.
func (w *Worker) applyPrewarmTargets(t *proto.PrewarmTargets) {
	if w.cfg.Prewarm <= 0 {
		return
	}
	targets := apportionPrewarm(w.cfg.Prewarm, t.Targets, w.cfg.PrewarmImage)
	var victims []*sandbox.Instance
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	// Two push sweeps can race; never let an older generation overwrite a
	// newer one (equal generations re-apply idempotently).
	if t.Gen < w.prewarmGen {
		w.mu.Unlock()
		return
	}
	w.prewarmGen = t.Gen
	w.prewarmTargets = targets
	for img, pool := range w.prewarmPools {
		want := targets[img]
		for len(pool) > want {
			victims = append(victims, pool[0].inst)
			pool = pool[1:]
		}
		if len(pool) == 0 {
			delete(w.prewarmPools, img)
		} else {
			w.prewarmPools[img] = pool
		}
	}
	w.updatePoolGaugeLocked()
	w.mu.Unlock()
	w.killEvicted(victims)
	for i := 0; i < w.cfg.Prewarm; i++ {
		w.spawnPrewarmFill("")
	}
}

// apportionPrewarm splits a node's pre-warm budget across the cluster-wide
// wants proportionally (largest-remainder rounding, deterministic
// tie-break by want then image name); leftover capacity stays on the
// generic base image.
func apportionPrewarm(budget int, wants []proto.PrewarmTarget, base string) map[string]int {
	out := make(map[string]int, len(wants)+1)
	var sum int64
	for i := range wants {
		sum += int64(wants[i].Want)
	}
	if sum == 0 {
		out[base] = budget
		return out
	}
	if sum <= int64(budget) {
		used := 0
		for i := range wants {
			if wants[i].Want > 0 {
				out[wants[i].Image] += int(wants[i].Want)
				used += int(wants[i].Want)
			}
		}
		if budget > used {
			out[base] += budget - used
		}
		return out
	}
	// Over-subscribed: proportional floor shares, remainder to the images
	// with the largest fractional parts.
	type share struct {
		image string
		want  uint32
		rem   int64
	}
	shares := make([]share, 0, len(wants))
	used := 0
	for i := range wants {
		if wants[i].Want == 0 {
			continue
		}
		num := int64(budget) * int64(wants[i].Want)
		out[wants[i].Image] += int(num / sum)
		used += int(num / sum)
		shares = append(shares, share{image: wants[i].Image, want: wants[i].Want, rem: num % sum})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].rem != shares[j].rem {
			return shares[i].rem > shares[j].rem
		}
		if shares[i].want != shares[j].want {
			return shares[i].want > shares[j].want
		}
		return shares[i].image < shares[j].image
	})
	for i := 0; used < budget && i < len(shares); i++ {
		out[shares[i].image]++
		used++
	}
	for img, n := range out {
		if n == 0 {
			delete(out, img)
		}
	}
	return out
}

// evictForMemoryLocked collects idle pool entries for teardown while the
// real-sandbox allocation plus the pool's estimated footprint exceeds the
// node's memory, least-recently-idle across all images first. Skipped
// when capacity is unknown (Node.MemoryMB == 0). Callers hold w.mu and
// kill the returned instances after unlocking.
func (w *Worker) evictForMemoryLocked() []*sandbox.Instance {
	if w.cfg.Node.MemoryMB <= 0 || w.cfg.Prewarm <= 0 {
		return nil
	}
	pooled := 0
	for _, pool := range w.prewarmPools {
		pooled += len(pool)
	}
	var victims []*sandbox.Instance
	for pooled > 0 && w.allocMem+pooled*w.cfg.PrewarmMemoryMB > w.cfg.Node.MemoryMB {
		oldest := ""
		for img, pool := range w.prewarmPools {
			if oldest == "" || pool[0].idleSince.Before(w.prewarmPools[oldest][0].idleSince) {
				oldest = img
			}
		}
		pool := w.prewarmPools[oldest]
		victims = append(victims, pool[0].inst)
		if len(pool) == 1 {
			delete(w.prewarmPools, oldest)
		} else {
			w.prewarmPools[oldest] = pool[1:]
		}
		pooled--
	}
	if len(victims) > 0 {
		w.updatePoolGaugeLocked()
	}
	return victims
}

// killEvicted tears down evicted pool entries outside w.mu (runtime kills
// sleep), counting them in telemetry.
func (w *Worker) killEvicted(victims []*sandbox.Instance) {
	for _, inst := range victims {
		_ = w.cfg.Runtime.Kill(inst.ID)
		w.mPrewarmEvicted.Inc()
	}
}

// PrewarmGen returns the generation of the last applied target push (0
// until one arrives — e.g. after a daemon restart, which the control
// plane detects via re-registration and answers with a fresh push).
func (w *Worker) PrewarmGen() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prewarmGen
}

// PrewarmPoolSizes returns the current per-image pool sizes, for tests
// and experiments.
func (w *Worker) PrewarmPoolSizes() map[string]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]int, len(w.prewarmPools))
	for img, pool := range w.prewarmPools {
		out[img] = len(pool)
	}
	return out
}

func (w *Worker) releaseResources(f *core.Function) {
	w.mu.Lock()
	w.allocCPU -= f.Scaling.CPUMilli
	w.allocMem -= f.Scaling.MemoryMB
	w.mu.Unlock()
}

func (w *Worker) killSandbox(id core.SandboxID) error {
	w.mu.Lock()
	rs, ok := w.readyMap()[id]
	var fn core.Function
	if ok {
		w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
			delete(m, id)
		})
		fn = w.functions[id]
		delete(w.functions, id)
	}
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("worker %s: kill: unknown sandbox %d", w.cfg.Node.Name, id)
	}
	w.dropQueuedReady(id)
	w.releaseResources(&fn)
	w.metrics.Counter("sandboxes_killed").Inc()
	return w.cfg.Runtime.Kill(rs.rtID)
}

// dropQueuedReady discards any queued-but-unsent readiness events for a
// sandbox the worker no longer owns. Without this, a kill/crash
// notification sent immediately could overtake the coalesced readiness
// report still sitting in the flusher queue, and the control plane would
// resurrect the dead sandbox as a phantom ready endpoint.
func (w *Worker) dropQueuedReady(id core.SandboxID) {
	w.readyEvMu.Lock()
	kept := w.readyEvs[:0]
	for _, ev := range w.readyEvs {
		if ev.SandboxID != id {
			kept = append(kept, ev)
		}
	}
	w.readyEvs = kept
	w.readyEvMu.Unlock()
}

func (w *Worker) listSandboxes() *proto.SandboxList {
	list := &proto.SandboxList{}
	for id, rs := range w.readyMap() {
		list.Sandboxes = append(list.Sandboxes, proto.SandboxInfo{
			ID:       id,
			Function: rs.inst.Function,
			Node:     w.cfg.Node.ID,
			Addr:     w.cfg.Addr,
			State:    core.SandboxReady,
		})
	}
	return list
}

// invokeSandbox dispatches a proxied invocation into a sandbox. This is
// the worker's invoke hot path: one atomic map load and two atomic
// counter updates, no lock shared with sandbox churn or heartbeats.
func (w *Worker) invokeSandbox(req *proto.InvokeSandboxRequest) ([]byte, error) {
	rs, ok := w.readyMap()[req.SandboxID]
	if !ok {
		return nil, fmt.Errorf("worker %s: invoke: no such sandbox %d", w.cfg.Node.Name, req.SandboxID)
	}
	rs.inFlight.Add(1)
	defer rs.inFlight.Add(-1)
	w.metrics.Counter("invocations").Inc()
	return rs.handler(req.Payload)
}

// CrashSandbox simulates a sandbox process crash: the sandbox disappears
// and the worker notifies the control plane (paper §3.4.1: "The worker
// node continuously monitors sandbox processes and notifies the control
// plane of crashes").
func (w *Worker) CrashSandbox(id core.SandboxID) error {
	w.mu.Lock()
	rs, ok := w.readyMap()[id]
	var fn core.Function
	if ok {
		w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
			delete(m, id)
		})
		fn = w.functions[id]
		delete(w.functions, id)
	}
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("worker %s: crash: unknown sandbox %d", w.cfg.Node.Name, id)
	}
	w.dropQueuedReady(id)
	w.releaseResources(&fn)
	_ = w.cfg.Runtime.Kill(rs.rtID)
	ev := proto.SandboxEvent{
		SandboxID: id,
		Function:  fn.Name,
		Node:      w.cfg.Node.ID,
		Addr:      w.cfg.Addr,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := w.cp.Call(ctx, proto.MethodSandboxCrashed, ev.Marshal())
	return err
}

// EncodeSandboxID encodes a sandbox ID as the KillSandbox payload.
func EncodeSandboxID(id core.SandboxID) []byte {
	b := make([]byte, 8)
	v := uint64(id)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
