// Package worker implements the Dirigent worker daemon. It registers the
// node with the control plane, sends periodic heartbeats with resource
// utilization, creates and tears down sandboxes on control-plane
// instruction via the sandbox.Runtime three-call interface, issues health
// probes to newly created sandboxes, notifies the control plane when a
// sandbox becomes ready or crashes, and dispatches proxied invocations
// into sandboxes (paper §3.1, §3.3, §4).
//
// The cold-start path is batched and pipelined: create instructions
// arrive per-worker batches (one RPC per autoscale sweep), run through a
// bounded creation pool, optionally claim from a pre-warm pool of
// initialized-but-unassigned sandboxes (Config.Prewarm), and report
// readiness in coalesced batches — whatever became ready while the
// previous report was in flight ships in one RPC.
package worker

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/proto"
	"dirigent/internal/relay"
	"dirigent/internal/sandbox"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Handler is a function implementation: it receives the invocation payload
// and returns the response body.
type Handler func(payload []byte) ([]byte, error)

// ImageRegistry maps container-image URLs to function implementations,
// standing in for the user code baked into images. Images without a
// registered handler echo their payload.
type ImageRegistry struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewImageRegistry returns an empty registry.
func NewImageRegistry() *ImageRegistry {
	return &ImageRegistry{handlers: make(map[string]Handler)}
}

// Register associates image with handler.
func (r *ImageRegistry) Register(image string, h Handler) {
	r.mu.Lock()
	r.handlers[image] = h
	r.mu.Unlock()
}

// Lookup returns the handler for image, or an echo handler.
func (r *ImageRegistry) Lookup(image string) Handler {
	r.mu.RLock()
	h := r.handlers[image]
	r.mu.RUnlock()
	if h == nil {
		return func(p []byte) ([]byte, error) { return p, nil }
	}
	return h
}

// Config parameterizes a worker daemon.
type Config struct {
	// Node identifies this worker; Port/IP form its RPC address.
	Node core.WorkerNode
	// Addr is the transport address the daemon listens on.
	Addr string
	// Runtime is the sandbox runtime (containerd / firecracker).
	Runtime sandbox.Runtime
	// Transport carries RPCs.
	Transport transport.Transport
	// ControlPlanes are the CP replica addresses.
	ControlPlanes []string
	// Relays, when non-empty, switches the worker's liveness traffic
	// (register, heartbeat) to relay mode: RPCs go to the first relay
	// that accepts them, in preference order, falling back to the direct
	// control plane path when every relay refuses. Empty keeps the
	// seed's direct WN → CP protocol exactly (the -relay off ablation).
	Relays []string
	// Clock abstracts time; nil selects the wall clock.
	Clock clock.Clock
	// HeartbeatInterval is the WN → CP liveness period.
	HeartbeatInterval time.Duration
	// Images resolves function implementations; nil echoes payloads.
	Images *ImageRegistry
	// Metrics receives worker telemetry; nil creates a private registry.
	Metrics *telemetry.Registry
	// CreateConcurrency bounds how many sandbox creations run inside the
	// runtime at once (the creation pool). Batched create RPCs can carry
	// hundreds of instructions; the pool keeps the runtime's kernel-lock
	// section from being hammered by unbounded goroutines. 0 selects the
	// default (8).
	CreateConcurrency int
	// Prewarm keeps a pool of this many initialized-but-unassigned
	// sandboxes on the node. A cold start whose function has a matching
	// runtime spec claims one instead of creating from scratch, skipping
	// runtime init and boot; the pool refills asynchronously after each
	// claim. 0 disables pre-warming.
	Prewarm int
	// PrewarmImage is the image prewarm sandboxes boot from (a generic
	// base snapshot); empty selects "prewarm/base".
	PrewarmImage string
}

// Worker is a running worker daemon.
type Worker struct {
	cfg      Config
	clk      clock.Clock
	cp       *cpclient.Client
	live     *relay.Client // non-nil in relay mode; carries register + heartbeat
	listener transport.Listener
	metrics  *telemetry.Registry

	// mu guards registry mutations and resource accounting. The
	// invocation dispatch path never takes it: the ready map is
	// published copy-on-write through ready, mirroring the data plane's
	// endpoint snapshots, and per-sandbox in-flight counts are atomics
	// on the readySandbox itself.
	mu        sync.Mutex
	ready     atomic.Pointer[map[core.SandboxID]*readySandbox]
	creating  int
	allocCPU  int
	allocMem  int
	functions map[core.SandboxID]core.Function

	// createSem is the bounded creation pool: at most CreateConcurrency
	// Runtime.Create calls run at once, regardless of how many batched
	// create instructions are queued.
	createSem chan struct{}

	// Pre-warm pool: initialized-but-unassigned instances, guarded by mu.
	// prewarmPending counts fills in flight so claims don't over-refill.
	prewarmPool    []*sandbox.Instance
	prewarmPending int
	prewarmSeq     atomic.Uint64

	// Readiness report coalescing: events queue under readyEvMu and a
	// single flusher drains whatever accumulated while its previous RPC
	// was in flight into one SandboxReadyBatch call.
	readyEvMu    sync.Mutex
	readyEvs     []proto.SandboxEvent
	readyFlusher bool

	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped bool

	mPrewarmHits   *telemetry.Counter
	mPrewarmMisses *telemetry.Counter
	mReadyBatch    *telemetry.Histogram
	mCreateWait    *telemetry.Histogram
}

type readySandbox struct {
	inst    *sandbox.Instance
	handler Handler
	// rtID is the runtime's handle for the instance; it differs from the
	// dispatch-map key when the sandbox was claimed from the pre-warm
	// pool (which mints its own IDs before a control-plane ID exists).
	rtID     core.SandboxID
	inFlight atomic.Int64
}

// readyMap returns the current copy-on-write sandbox dispatch map.
// The map is immutable after publication; never mutate it.
func (w *Worker) readyMap() map[core.SandboxID]*readySandbox {
	return *w.ready.Load()
}

// publishReadyLocked copies the dispatch map, applies mutate, and
// publishes the successor. Callers hold w.mu.
func (w *Worker) publishReadyLocked(mutate func(m map[core.SandboxID]*readySandbox)) {
	cur := w.readyMap()
	next := make(map[core.SandboxID]*readySandbox, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	mutate(next)
	w.ready.Store(&next)
}

// New creates a worker daemon (call Start to register and serve).
func New(cfg Config) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	if cfg.Images == nil {
		cfg.Images = NewImageRegistry()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.CreateConcurrency <= 0 {
		cfg.CreateConcurrency = defaultCreateConcurrency
	}
	if cfg.Prewarm < 0 {
		cfg.Prewarm = 0
	}
	if cfg.PrewarmImage == "" {
		cfg.PrewarmImage = "prewarm/base"
	}
	w := &Worker{
		cfg:       cfg,
		clk:       cfg.Clock,
		cp:        cpclient.New(cfg.Transport, cfg.ControlPlanes),
		metrics:   cfg.Metrics,
		createSem: make(chan struct{}, cfg.CreateConcurrency),
		functions: make(map[core.SandboxID]core.Function),
		stopCh:    make(chan struct{}),
	}
	if len(cfg.Relays) > 0 {
		w.live = relay.NewClient(cfg.Transport, cfg.Relays, cfg.ControlPlanes)
		w.live.Fallbacks = cfg.Metrics.Counter("relay_fallbacks")
	}
	empty := make(map[core.SandboxID]*readySandbox)
	w.ready.Store(&empty)
	w.mPrewarmHits = w.metrics.Counter("prewarm_hits")
	w.mPrewarmMisses = w.metrics.Counter("prewarm_misses")
	w.mReadyBatch = w.metrics.CountHistogram("ready_batch_size")
	w.mCreateWait = w.metrics.Histogram("create_pool_wait_ms")
	return w
}

// defaultCreateConcurrency bounds concurrent runtime creations per node.
// The simulated runtimes serialize on a node-wide kernel section anyway
// (paper §4), so a small pool keeps batch bursts from spawning hundreds
// of goroutines that would all pile onto that lock.
const defaultCreateConcurrency = 8

// Start listens for control-plane RPCs, registers the worker, and begins
// heartbeating.
func (w *Worker) Start() error {
	ln, err := w.cfg.Transport.Listen(w.cfg.Addr, w.handleRPC)
	if err != nil {
		return fmt.Errorf("worker %s: %w", w.cfg.Node.Name, err)
	}
	w.listener = ln
	req := proto.RegisterWorkerRequest{Worker: w.cfg.Node}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := w.liveCall(ctx, proto.MethodRegisterWorker, req.Marshal()); err != nil {
		ln.Close()
		return fmt.Errorf("worker %s: register: %w", w.cfg.Node.Name, err)
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	// Fill the pre-warm pool asynchronously through the creation pool;
	// the node serves create instructions while the pool warms up.
	for i := 0; i < w.cfg.Prewarm; i++ {
		w.spawnPrewarmFill()
	}
	return nil
}

// Stop simulates a daemon crash: it stops heartbeats and stops serving
// RPCs without deregistering, so the control plane must detect the failure
// by heartbeat timeout (paper §3.4.1, "Worker node fault tolerance").
func (w *Worker) Stop() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stopCh)
	if w.listener != nil {
		w.listener.Close()
	}
	w.wg.Wait()
	// Tear down the pre-warm pool: unlike ready sandboxes (which the
	// control plane tracks and re-drains after detecting the crash),
	// pooled instances are known only to this daemon and would leak in
	// the runtime forever.
	w.mu.Lock()
	pool := w.prewarmPool
	w.prewarmPool = nil
	w.mu.Unlock()
	for _, inst := range pool {
		_ = w.cfg.Runtime.Kill(inst.ID)
	}
}

// Addr returns the worker's RPC address.
func (w *Worker) Addr() string { return w.cfg.Addr }

// Node returns the worker's identity.
func (w *Worker) Node() core.WorkerNode { return w.cfg.Node }

// Metrics returns the worker's telemetry registry.
func (w *Worker) Metrics() *telemetry.Registry { return w.metrics }

// SandboxCount returns the number of ready sandboxes.
func (w *Worker) SandboxCount() int {
	return len(w.readyMap())
}

// ReadySandboxIDs returns the IDs of all ready sandboxes, used by tests
// and failure-injection harnesses.
func (w *Worker) ReadySandboxIDs() []core.SandboxID {
	m := w.readyMap()
	ids := make([]core.SandboxID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	return ids
}

// InFlight reports the number of invocations currently executing across
// all ready sandboxes, read lock-free from the per-sandbox counters.
// Used by tests and load-inspection harnesses.
func (w *Worker) InFlight() int64 {
	var total int64
	for _, rs := range w.readyMap() {
		total += rs.inFlight.Load()
	}
	return total
}

// heartbeatLoop is driven by the injected clock so simulated-time tests
// don't burn wall time.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stopCh:
			return
		case <-w.clk.After(w.cfg.HeartbeatInterval):
			w.sendHeartbeat()
		}
	}
}

func (w *Worker) utilization() core.NodeUtilization {
	w.mu.Lock()
	defer w.mu.Unlock()
	return core.NodeUtilization{
		Node:          w.cfg.Node.ID,
		CPUMilliUsed:  w.allocCPU,
		MemoryMBUsed:  w.allocMem,
		SandboxCount:  len(w.readyMap()),
		CreationQueue: w.creating,
	}
}

func (w *Worker) sendHeartbeat() {
	hb := proto.WorkerHeartbeat{Node: w.cfg.Node.ID, Util: w.utilization()}
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.HeartbeatInterval*4)
	defer cancel()
	// Best effort; a missed heartbeat is exactly what the CP's health
	// monitor is designed to tolerate and detect.
	_, _ = w.liveCall(ctx, proto.MethodWorkerHeartbeat, hb.Marshal())
}

// liveCall routes the liveness protocol (register, heartbeat): through the
// relay tier in relay mode, directly to the control plane otherwise. Every
// other worker RPC (readiness reports, etc.) stays on the direct path —
// relays carry only the per-worker traffic that dominates at fleet scale.
func (w *Worker) liveCall(ctx context.Context, method string, payload []byte) ([]byte, error) {
	if w.live != nil {
		return w.live.Call(ctx, method, payload)
	}
	return w.cp.Call(ctx, method, payload)
}

// handleRPC serves CP → WN and DP → WN calls.
func (w *Worker) handleRPC(method string, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodCreateSandbox:
		req, err := proto.UnmarshalCreateSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		return nil, w.createSandbox(req, false)
	case proto.MethodCreateSandboxBatch:
		batch, err := proto.UnmarshalCreateSandboxBatch(payload)
		if err != nil {
			return nil, err
		}
		w.metrics.Counter("create_batches_received").Inc()
		for i := range batch.Creates {
			if err := w.createSandbox(&batch.Creates[i], true); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case proto.MethodKillSandbox:
		d := struct{ ID core.SandboxID }{}
		if len(payload) >= 8 {
			var v uint64
			for i := 0; i < 8; i++ {
				v |= uint64(payload[i]) << (8 * i)
			}
			d.ID = core.SandboxID(v)
		}
		return nil, w.killSandbox(d.ID)
	case proto.MethodKillSandboxBatch:
		batch, err := proto.UnmarshalKillSandboxBatch(payload)
		if err != nil {
			return nil, err
		}
		w.metrics.Counter("kill_batches_received").Inc()
		// Unknown IDs (already crashed, or torn down by a racing drain)
		// must not fail the rest of the batch.
		for _, id := range batch.IDs {
			_ = w.killSandbox(id)
		}
		return nil, nil
	case proto.MethodListSandboxes:
		return w.listSandboxes().Marshal(), nil
	case proto.MethodInvokeSandbox:
		req, err := proto.UnmarshalInvokeSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		return w.invokeSandbox(req)
	default:
		return nil, fmt.Errorf("worker: unknown method %q", method)
	}
}

// createSandbox runs asynchronously: the RPC acks the instruction, and the
// worker notifies the control plane once the sandbox passes health probes
// (paper §3.3: "Once a sandbox is created, the worker daemon issues health
// probes ... then notifies the control plane").
//
// batched mirrors the shape of the instruction's arrival: creations from
// a batch RPC report readiness through the coalescing flusher, while
// seed-style singleton RPCs report with a synchronous singleton RPC —
// so the CreateBatch=1 ablation reproduces the seed pipeline end to end,
// including one endpoint broadcast per readiness event.
func (w *Worker) createSandbox(req *proto.CreateSandboxRequest, batched bool) error {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return fmt.Errorf("worker %s: stopped", w.cfg.Node.Name)
	}
	w.creating++
	w.allocCPU += req.Function.Scaling.CPUMilli
	w.allocMem += req.Function.Scaling.MemoryMB
	w.mu.Unlock()

	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.doCreate(req, batched)
	}()
	return nil
}

func (w *Worker) doCreate(req *proto.CreateSandboxRequest, batched bool) {
	start := w.clk.Now()

	// Fast path: claim an initialized-but-unassigned sandbox from the
	// pre-warm pool, skipping runtime creation and boot entirely.
	if inst := w.claimPrewarm(&req.Function); inst != nil {
		w.mu.Lock()
		w.creating--
		if w.stopped {
			w.mu.Unlock()
			// Claimed out of the pool, so Stop's drain no longer covers
			// this instance: tear it down here or it leaks in the runtime.
			_ = w.cfg.Runtime.Kill(inst.ID)
			w.releaseResources(&req.Function)
			return
		}
		// Rebind the instance to the control plane's sandbox identity and
		// the claiming function; the runtime keeps its own handle (rtID)
		// for teardown.
		bound := *inst
		bound.ID = req.SandboxID
		bound.Function = req.Function.Name
		bound.Image = req.Function.Image
		rs := &readySandbox{
			inst:    &bound,
			handler: w.cfg.Images.Lookup(req.Function.Image),
			rtID:    inst.ID,
		}
		w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
			m[req.SandboxID] = rs
		})
		w.functions[req.SandboxID] = req.Function
		w.mu.Unlock()
		w.mPrewarmHits.Inc()
		w.metrics.Counter("sandboxes_created").Inc()
		w.metrics.Histogram("sandbox_creation_ms").Observe(w.clk.Since(start))
		w.reportReady(proto.SandboxEvent{
			SandboxID: req.SandboxID,
			Function:  req.Function.Name,
			Node:      w.cfg.Node.ID,
			Addr:      w.cfg.Addr,
		}, batched)
		w.spawnPrewarmFill()
		return
	}
	if w.cfg.Prewarm > 0 {
		w.mPrewarmMisses.Inc()
		// A miss means the pool is below target (drained by a burst, or
		// a fill failed earlier); let cold-start traffic heal it.
		w.spawnPrewarmFill()
	}

	w.acquireCreateSlot()
	inst, err := w.cfg.Runtime.Create(context.Background(), sandbox.Spec{
		ID:       req.SandboxID,
		Function: req.Function,
	})
	w.releaseCreateSlot()
	w.mu.Lock()
	w.creating--
	w.mu.Unlock()
	if err != nil {
		w.releaseResources(&req.Function)
		w.metrics.Counter("sandbox_create_errors").Inc()
		return
	}
	// Health probing: wait out the boot delay, then probe.
	if inst.BootDelay > 0 {
		w.clk.Sleep(inst.BootDelay)
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	rs := &readySandbox{
		inst:    inst,
		handler: w.cfg.Images.Lookup(req.Function.Image),
		rtID:    inst.ID,
	}
	w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
		m[inst.ID] = rs
	})
	w.functions[inst.ID] = req.Function
	w.mu.Unlock()
	w.metrics.Counter("sandboxes_created").Inc()
	w.metrics.Histogram("sandbox_creation_ms").Observe(w.clk.Since(start))

	w.reportReady(proto.SandboxEvent{
		SandboxID: inst.ID,
		Function:  req.Function.Name,
		Node:      w.cfg.Node.ID,
		Addr:      w.cfg.Addr,
	}, batched)
}

// reportReady notifies the control plane of one readiness transition:
// through the coalescing flusher for batch-delivered creations, or — for
// seed-style singleton instructions — with an immediate singleton RPC,
// exactly as the seed worker did.
func (w *Worker) reportReady(ev proto.SandboxEvent, batched bool) {
	if batched {
		w.queueReady(ev)
		return
	}
	w.mReadyBatch.ObserveMs(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, _ = w.cp.Call(ctx, proto.MethodSandboxReady, ev.Marshal())
}

// acquireCreateSlot blocks until a creation-pool slot frees up,
// recording the wait so saturation is visible in telemetry.
func (w *Worker) acquireCreateSlot() {
	select {
	case w.createSem <- struct{}{}:
		return
	default:
	}
	start := w.clk.Now()
	w.createSem <- struct{}{}
	w.mCreateWait.Observe(w.clk.Since(start))
}

func (w *Worker) releaseCreateSlot() { <-w.createSem }

// queueReady enqueues one readiness event for the control plane and
// ensures a flusher goroutine is draining the queue. The flusher sends
// whatever accumulated while its previous RPC was in flight as a single
// SandboxReadyBatch — under a creation burst the control plane sees
// O(RPCs in flight) reports instead of one RPC per sandbox, while an
// isolated creation still reports with singleton-RPC latency.
func (w *Worker) queueReady(ev proto.SandboxEvent) {
	w.readyEvMu.Lock()
	w.readyEvs = append(w.readyEvs, ev)
	if w.readyFlusher {
		w.readyEvMu.Unlock()
		return
	}
	w.readyFlusher = true
	w.readyEvMu.Unlock()
	w.wg.Add(1)
	go w.flushReadyLoop()
}

func (w *Worker) flushReadyLoop() {
	defer w.wg.Done()
	for {
		w.readyEvMu.Lock()
		evs := w.readyEvs
		w.readyEvs = nil
		if len(evs) == 0 {
			w.readyFlusher = false
			w.readyEvMu.Unlock()
			return
		}
		w.readyEvMu.Unlock()
		w.mReadyBatch.ObserveMs(float64(len(evs)))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if len(evs) == 1 {
			_, _ = w.cp.Call(ctx, proto.MethodSandboxReady, evs[0].Marshal())
		} else {
			batch := proto.SandboxEventBatch{Events: evs}
			_, _ = w.cp.Call(ctx, proto.MethodSandboxReadyBatch, batch.Marshal())
		}
		cancel()
	}
}

// claimPrewarm pops a pre-warmed instance if the pool has one and the
// function's runtime spec matches this node's runtime (an empty spec
// matches any runtime).
func (w *Worker) claimPrewarm(fn *core.Function) *sandbox.Instance {
	if fn.Runtime != "" && fn.Runtime != w.cfg.Runtime.Name() {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.prewarmPool)
	if n == 0 {
		return nil
	}
	inst := w.prewarmPool[n-1]
	w.prewarmPool = w.prewarmPool[:n-1]
	w.metrics.Gauge("prewarm_pool_size").Set(int64(n - 1))
	return inst
}

// spawnPrewarmFill tops the pre-warm pool back up to its configured size
// with one asynchronous creation, if a fill isn't already pending for
// this slot.
func (w *Worker) spawnPrewarmFill() {
	if w.cfg.Prewarm <= 0 {
		return
	}
	w.mu.Lock()
	if w.stopped || len(w.prewarmPool)+w.prewarmPending >= w.cfg.Prewarm {
		w.mu.Unlock()
		return
	}
	w.prewarmPending++
	w.mu.Unlock()
	w.wg.Add(1)
	go w.fillPrewarm()
}

func (w *Worker) fillPrewarm() {
	defer w.wg.Done()
	// Pre-warm IDs live in their own range so they can never collide
	// with control-plane-minted sandbox IDs.
	id := core.SandboxID(1<<62 | w.prewarmSeq.Add(1))
	spec := sandbox.Spec{
		ID: id,
		Function: core.Function{
			Name:    "_prewarm",
			Image:   w.cfg.PrewarmImage,
			Port:    1,
			Runtime: w.cfg.Runtime.Name(),
		},
	}
	w.acquireCreateSlot()
	inst, err := w.cfg.Runtime.Create(context.Background(), spec)
	w.releaseCreateSlot()
	if err != nil {
		w.mu.Lock()
		w.prewarmPending--
		w.mu.Unlock()
		w.metrics.Counter("prewarm_create_errors").Inc()
		return
	}
	// The pool holds fully initialized sandboxes: boot completes here, at
	// fill time, which is exactly the work a claim skips.
	if inst.BootDelay > 0 {
		w.clk.Sleep(inst.BootDelay)
	}
	w.mu.Lock()
	w.prewarmPending--
	if w.stopped {
		w.mu.Unlock()
		_ = w.cfg.Runtime.Kill(inst.ID)
		return
	}
	w.prewarmPool = append(w.prewarmPool, inst)
	w.metrics.Gauge("prewarm_pool_size").Set(int64(len(w.prewarmPool)))
	w.mu.Unlock()
	w.metrics.Counter("prewarm_filled").Inc()
}

func (w *Worker) releaseResources(f *core.Function) {
	w.mu.Lock()
	w.allocCPU -= f.Scaling.CPUMilli
	w.allocMem -= f.Scaling.MemoryMB
	w.mu.Unlock()
}

func (w *Worker) killSandbox(id core.SandboxID) error {
	w.mu.Lock()
	rs, ok := w.readyMap()[id]
	var fn core.Function
	if ok {
		w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
			delete(m, id)
		})
		fn = w.functions[id]
		delete(w.functions, id)
	}
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("worker %s: kill: unknown sandbox %d", w.cfg.Node.Name, id)
	}
	w.dropQueuedReady(id)
	w.releaseResources(&fn)
	w.metrics.Counter("sandboxes_killed").Inc()
	return w.cfg.Runtime.Kill(rs.rtID)
}

// dropQueuedReady discards any queued-but-unsent readiness events for a
// sandbox the worker no longer owns. Without this, a kill/crash
// notification sent immediately could overtake the coalesced readiness
// report still sitting in the flusher queue, and the control plane would
// resurrect the dead sandbox as a phantom ready endpoint.
func (w *Worker) dropQueuedReady(id core.SandboxID) {
	w.readyEvMu.Lock()
	kept := w.readyEvs[:0]
	for _, ev := range w.readyEvs {
		if ev.SandboxID != id {
			kept = append(kept, ev)
		}
	}
	w.readyEvs = kept
	w.readyEvMu.Unlock()
}

func (w *Worker) listSandboxes() *proto.SandboxList {
	list := &proto.SandboxList{}
	for id, rs := range w.readyMap() {
		list.Sandboxes = append(list.Sandboxes, proto.SandboxInfo{
			ID:       id,
			Function: rs.inst.Function,
			Node:     w.cfg.Node.ID,
			Addr:     w.cfg.Addr,
			State:    core.SandboxReady,
		})
	}
	return list
}

// invokeSandbox dispatches a proxied invocation into a sandbox. This is
// the worker's invoke hot path: one atomic map load and two atomic
// counter updates, no lock shared with sandbox churn or heartbeats.
func (w *Worker) invokeSandbox(req *proto.InvokeSandboxRequest) ([]byte, error) {
	rs, ok := w.readyMap()[req.SandboxID]
	if !ok {
		return nil, fmt.Errorf("worker %s: invoke: no such sandbox %d", w.cfg.Node.Name, req.SandboxID)
	}
	rs.inFlight.Add(1)
	defer rs.inFlight.Add(-1)
	w.metrics.Counter("invocations").Inc()
	return rs.handler(req.Payload)
}

// CrashSandbox simulates a sandbox process crash: the sandbox disappears
// and the worker notifies the control plane (paper §3.4.1: "The worker
// node continuously monitors sandbox processes and notifies the control
// plane of crashes").
func (w *Worker) CrashSandbox(id core.SandboxID) error {
	w.mu.Lock()
	rs, ok := w.readyMap()[id]
	var fn core.Function
	if ok {
		w.publishReadyLocked(func(m map[core.SandboxID]*readySandbox) {
			delete(m, id)
		})
		fn = w.functions[id]
		delete(w.functions, id)
	}
	w.mu.Unlock()
	if !ok {
		return fmt.Errorf("worker %s: crash: unknown sandbox %d", w.cfg.Node.Name, id)
	}
	w.dropQueuedReady(id)
	w.releaseResources(&fn)
	_ = w.cfg.Runtime.Kill(rs.rtID)
	ev := proto.SandboxEvent{
		SandboxID: id,
		Function:  fn.Name,
		Node:      w.cfg.Node.ID,
		Addr:      w.cfg.Addr,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := w.cp.Call(ctx, proto.MethodSandboxCrashed, ev.Marshal())
	return err
}

// EncodeSandboxID encodes a sandbox ID as the KillSandbox payload.
func EncodeSandboxID(id core.SandboxID) []byte {
	b := make([]byte, 8)
	v := uint64(id)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
