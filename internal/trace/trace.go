// Package trace models the Azure Functions production workload the paper
// evaluates on (Shahrad et al., ATC'20: 70K functions over two weeks) and
// provides the InVitro-style sampling the paper uses to fit a trace slice
// onto a fixed-size cluster (§5.3). Because the original trace is not
// distributed with this repository, NewAzureLike synthesizes a workload
// with the same statistical structure the paper's analysis depends on:
//
//   - heavy-tailed per-function invocation rates (a few hot functions, a
//     long tail of rarely invoked ones),
//   - timer-driven functions that fire in unison with long periods, which
//     produce the synchronized cold-start bursts the paper identifies as
//     the tail-latency culprit (§5.3),
//   - lognormal execution times with roughly half of all functions
//     completing within a second (§2.1), and
//   - bursty Poisson arrivals for interactive functions.
//
// The CSV reader/writer follows the Azure trace format (per-minute
// invocation counts per function), so the real trace can be dropped in.
package trace

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Class labels the invocation pattern of a function.
type Class uint8

// Function classes.
const (
	// ClassTimer fires on a fixed period, aligned to the period boundary
	// (cron-style triggers; the unison bursts in the paper).
	ClassTimer Class = iota
	// ClassPoisson arrives with exponential inter-arrival times.
	ClassPoisson
	// ClassBursty alternates idle gaps with short high-rate bursts.
	ClassBursty
	// ClassRare is invoked a handful of times over the whole trace.
	ClassRare
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassTimer:
		return "timer"
	case ClassPoisson:
		return "poisson"
	case ClassBursty:
		return "bursty"
	case ClassRare:
		return "rare"
	default:
		return "unknown"
	}
}

// FunctionSpec describes one trace function.
type FunctionSpec struct {
	Name string
	// Class is the arrival pattern.
	Class Class
	// RatePerMinute is the average invocation rate (Poisson/bursty).
	RatePerMinute float64
	// Period is the timer period (ClassTimer only).
	Period time.Duration
	// ExecMedian and ExecSigma parameterize the lognormal execution-time
	// distribution.
	ExecMedian time.Duration
	ExecSigma  float64
	// MemoryMB is the sandbox memory footprint.
	MemoryMB int
}

// Invocation is one invocation event in a trace.
type Invocation struct {
	At       time.Duration
	Function *FunctionSpec
	Exec     time.Duration
}

// Trace is a workload: functions plus their materialized invocations.
type Trace struct {
	Functions []*FunctionSpec
	Duration  time.Duration
	// Invocations are sorted by arrival time.
	Invocations []Invocation
}

// Config parameterizes synthetic trace generation.
type Config struct {
	// Functions is the number of functions to generate.
	Functions int
	// Duration is the trace length.
	Duration time.Duration
	// Seed makes generation reproducible.
	Seed int64
	// TimerFraction, BurstyFraction, RareFraction split the function
	// population; the remainder is Poisson. Zero values select the
	// Azure-like default mix (30% timer, 15% bursty, 25% rare).
	TimerFraction  float64
	BurstyFraction float64
	RareFraction   float64
	// HotFunctionBoost scales the rate of the hottest functions; the
	// default produces the paper's heavy-tailed rate distribution.
	HotFunctionBoost float64
}

func (c Config) withDefaults() Config {
	if c.Functions == 0 {
		c.Functions = 500
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Minute
	}
	if c.TimerFraction == 0 {
		c.TimerFraction = 0.30
	}
	if c.BurstyFraction == 0 {
		c.BurstyFraction = 0.15
	}
	if c.RareFraction == 0 {
		c.RareFraction = 0.25
	}
	if c.HotFunctionBoost == 0 {
		c.HotFunctionBoost = 40
	}
	return c
}

// timerPeriods are the cron-style periods timer functions use. Long
// periods let sandboxes expire between firings, creating synchronized
// cold-start bursts.
var timerPeriods = []time.Duration{
	time.Minute, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 15 * time.Minute,
}

// NewAzureLike generates a synthetic Azure-shaped trace.
func NewAzureLike(cfg Config) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Duration: cfg.Duration}

	for i := 0; i < cfg.Functions; i++ {
		spec := &FunctionSpec{
			Name: "azure-fn-" + itoa(i),
			// Half of all functions execute within a second (paper §2.1):
			// lognormal medians centered near 300 ms with wide spread.
			ExecMedian: lognormalDuration(rng, 300*time.Millisecond, 1.4, time.Millisecond, 30*time.Second),
			ExecSigma:  0.4 + rng.Float64()*0.4,
			MemoryMB:   []int{128, 128, 256, 256, 512, 1024}[rng.Intn(6)],
		}
		u := rng.Float64()
		switch {
		case u < cfg.TimerFraction:
			spec.Class = ClassTimer
			spec.Period = timerPeriods[rng.Intn(len(timerPeriods))]
			spec.RatePerMinute = float64(time.Minute) / float64(spec.Period)
		case u < cfg.TimerFraction+cfg.BurstyFraction:
			spec.Class = ClassBursty
			spec.RatePerMinute = heavyTailedRate(rng, cfg.HotFunctionBoost)
		case u < cfg.TimerFraction+cfg.BurstyFraction+cfg.RareFraction:
			spec.Class = ClassRare
			spec.RatePerMinute = 0.05 + rng.Float64()*0.1
		default:
			spec.Class = ClassPoisson
			spec.RatePerMinute = heavyTailedRate(rng, cfg.HotFunctionBoost)
		}
		tr.Functions = append(tr.Functions, spec)
	}
	tr.Invocations = materialize(tr, rng)
	return tr
}

// heavyTailedRate draws a per-minute rate from a heavy-tailed distribution:
// most functions are slow drips, a few are hot.
func heavyTailedRate(rng *rand.Rand, boost float64) float64 {
	base := math.Exp(rng.NormFloat64()*1.6 - 0.5) // lognormal around ~0.6/min
	if rng.Float64() < 0.05 {
		base *= boost // the hot tail
	}
	if base > 600 {
		base = 600
	}
	if base < 0.02 {
		base = 0.02
	}
	return base
}

func lognormalDuration(rng *rand.Rand, median time.Duration, sigma float64, min, max time.Duration) time.Duration {
	d := time.Duration(float64(median) * math.Exp(sigma*rng.NormFloat64()))
	if d < min {
		d = min
	}
	if d > max {
		d = max
	}
	return d
}

// materialize expands function specs into a time-sorted invocation list.
func materialize(tr *Trace, rng *rand.Rand) []Invocation {
	var out []Invocation
	for _, fn := range tr.Functions {
		exec := func() time.Duration {
			return lognormalDuration(rng, fn.ExecMedian, fn.ExecSigma, 100*time.Microsecond, 5*time.Minute)
		}
		switch fn.Class {
		case ClassTimer:
			// Fire at each period boundary: all functions sharing a
			// period fire in unison, as timer triggers do in production.
			for at := fn.Period; at < tr.Duration; at += fn.Period {
				out = append(out, Invocation{At: at, Function: fn, Exec: exec()})
			}
		case ClassPoisson, ClassRare:
			ratePerNs := fn.RatePerMinute / float64(time.Minute)
			at := time.Duration(0)
			for {
				gap := time.Duration(rng.ExpFloat64() / ratePerNs)
				at += gap
				if at >= tr.Duration {
					break
				}
				out = append(out, Invocation{At: at, Function: fn, Exec: exec()})
			}
		case ClassBursty:
			// Bursts of 5-50 invocations with idle gaps sized to hit the
			// average rate.
			at := time.Duration(0)
			for at < tr.Duration {
				burst := 5 + rng.Intn(46)
				gap := time.Duration(float64(burst) / (fn.RatePerMinute / float64(time.Minute)))
				at += time.Duration(rng.ExpFloat64() * float64(gap))
				if at >= tr.Duration {
					break
				}
				for b := 0; b < burst; b++ {
					bat := at + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
					if bat < tr.Duration {
						out = append(out, Invocation{At: bat, Function: fn, Exec: exec()})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Sample selects n functions with stratified sampling over the invocation-
// rate distribution, preserving the head/tail mix — the InVitro approach
// the paper uses to shrink the 70K-function trace onto a 100-node cluster.
// The returned trace reuses the parent's invocations for those functions.
func (tr *Trace) Sample(n int, seed int64) *Trace {
	if n >= len(tr.Functions) {
		return tr
	}
	rng := rand.New(rand.NewSource(seed))
	sorted := append([]*FunctionSpec(nil), tr.Functions...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].RatePerMinute < sorted[j].RatePerMinute
	})
	// One pick per stratum of the rate distribution.
	picked := make(map[*FunctionSpec]bool, n)
	var fns []*FunctionSpec
	for i := 0; i < n; i++ {
		lo := i * len(sorted) / n
		hi := (i + 1) * len(sorted) / n
		if hi <= lo {
			hi = lo + 1
		}
		f := sorted[lo+rng.Intn(hi-lo)]
		if picked[f] {
			continue
		}
		picked[f] = true
		fns = append(fns, f)
	}
	out := &Trace{Functions: fns, Duration: tr.Duration}
	for _, inv := range tr.Invocations {
		if picked[inv.Function] {
			out.Invocations = append(out.Invocations, inv)
		}
	}
	return out
}

// TotalInvocations returns the number of materialized invocations.
func (tr *Trace) TotalInvocations() int { return len(tr.Invocations) }

// RateStats returns per-second invocation counts over the trace, for
// workload characterization (paper Figure 3 reports the analogous sandbox
// creation rate).
func (tr *Trace) RateStats() []float64 {
	if tr.Duration <= 0 {
		return nil
	}
	buckets := make([]float64, int(tr.Duration/time.Second)+1)
	for _, inv := range tr.Invocations {
		idx := int(inv.At / time.Second)
		if idx < len(buckets) {
			buckets[idx]++
		}
	}
	return buckets
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
