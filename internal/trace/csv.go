package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteCSV serializes the trace in the Azure Functions trace format: one
// row per function with the function name, the median execution time in
// milliseconds, the memory footprint, and per-minute invocation counts.
// This is the interchange format between the generator, the experiment
// harness, and any real trace slice a user wants to replay.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	minutes := int(tr.Duration / time.Minute)
	if _, err := fmt.Fprintf(bw, "HashFunction,ExecMedianMs,MemoryMB"); err != nil {
		return err
	}
	for m := 1; m <= minutes; m++ {
		fmt.Fprintf(bw, ",%d", m)
	}
	fmt.Fprintln(bw)

	counts := make(map[*FunctionSpec][]int, len(tr.Functions))
	for _, fn := range tr.Functions {
		counts[fn] = make([]int, minutes)
	}
	for _, inv := range tr.Invocations {
		minute := int(inv.At / time.Minute)
		if minute < minutes {
			counts[inv.Function][minute]++
		}
	}
	for _, fn := range tr.Functions {
		fmt.Fprintf(bw, "%s,%.3f,%d", fn.Name, float64(fn.ExecMedian)/float64(time.Millisecond), fn.MemoryMB)
		for _, c := range counts[fn] {
			fmt.Fprintf(bw, ",%d", c)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ParseCSV reads a trace in the format written by WriteCSV. Invocations
// within each minute are spread uniformly, matching how trace players
// replay per-minute counts.
func ParseCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 4 || header[0] != "HashFunction" {
		return nil, fmt.Errorf("trace: unrecognized CSV header")
	}
	minutes := len(header) - 3
	tr := &Trace{Duration: time.Duration(minutes) * time.Minute}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(header))
		}
		execMs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || execMs < 0 || math.IsNaN(execMs) || math.IsInf(execMs, 0) {
			return nil, fmt.Errorf("trace: line %d: bad exec median %q", line, fields[1])
		}
		memMB, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad memory %q", line, fields[2])
		}
		fn := &FunctionSpec{
			Name:       fields[0],
			Class:      ClassPoisson,
			ExecMedian: time.Duration(execMs * float64(time.Millisecond)),
			ExecSigma:  0.5,
			MemoryMB:   memMB,
		}
		total := 0
		for m := 0; m < minutes; m++ {
			count, err := strconv.Atoi(fields[3+m])
			if err != nil || count < 0 {
				return nil, fmt.Errorf("trace: line %d minute %d: bad count %q", line, m+1, fields[3+m])
			}
			total += count
			for k := 0; k < count; k++ {
				at := time.Duration(m)*time.Minute + time.Duration(k)*time.Minute/time.Duration(count)
				tr.Invocations = append(tr.Invocations, Invocation{
					At:       at,
					Function: fn,
					Exec:     fn.ExecMedian,
				})
			}
		}
		fn.RatePerMinute = float64(total) / float64(minutes)
		tr.Functions = append(tr.Functions, fn)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read CSV: %w", err)
	}
	sortInvocations(tr)
	return tr, nil
}

func sortInvocations(tr *Trace) {
	sort.Slice(tr.Invocations, func(i, j int) bool {
		return tr.Invocations[i].At < tr.Invocations[j].At
	})
}
