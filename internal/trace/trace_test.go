package trace

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func azure(t *testing.T, n int, minutes int, seed int64) *Trace {
	t.Helper()
	return NewAzureLike(Config{
		Functions: n,
		Duration:  time.Duration(minutes) * time.Minute,
		Seed:      seed,
	})
}

func TestGenerateBasicShape(t *testing.T) {
	tr := azure(t, 300, 10, 1)
	if len(tr.Functions) != 300 {
		t.Fatalf("functions = %d", len(tr.Functions))
	}
	if tr.TotalInvocations() == 0 {
		t.Fatalf("no invocations generated")
	}
	// Invocations sorted and within the duration.
	last := time.Duration(0)
	for _, inv := range tr.Invocations {
		if inv.At < last {
			t.Fatalf("invocations not sorted")
		}
		if inv.At >= tr.Duration {
			t.Fatalf("invocation at %v beyond duration %v", inv.At, tr.Duration)
		}
		if inv.Exec <= 0 {
			t.Fatalf("non-positive exec time")
		}
		last = inv.At
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := azure(t, 100, 5, 7)
	b := azure(t, 100, 5, 7)
	if a.TotalInvocations() != b.TotalInvocations() {
		t.Fatalf("same seed produced different invocation counts: %d vs %d",
			a.TotalInvocations(), b.TotalInvocations())
	}
	for i := range a.Invocations {
		if a.Invocations[i].At != b.Invocations[i].At {
			t.Fatalf("same seed diverged at invocation %d", i)
		}
	}
	c := azure(t, 100, 5, 8)
	if c.TotalInvocations() == a.TotalInvocations() {
		t.Logf("different seeds produced same count (possible but unlikely)")
	}
}

// traceDigest folds the complete event stream — function specs plus every
// invocation's (function, arrival, exec) triple — into one FNV-1a digest,
// so a golden value pins the generator's exact output, not just counts.
func traceDigest(tr *Trace) uint64 {
	h := fnv.New64a()
	for _, fn := range tr.Functions {
		fmt.Fprintf(h, "%s|%d|%d|%d|%g\n", fn.Name, fn.Class, fn.ExecMedian, fn.MemoryMB, fn.RatePerMinute)
	}
	for _, inv := range tr.Invocations {
		fmt.Fprintf(h, "%s@%d:%d\n", inv.Function.Name, inv.At, inv.Exec)
	}
	return h.Sum64()
}

// TestGenerateGoldenDigest pins the full event stream of a fixed config to
// a golden digest. BENCH_e2e.json (and every other committed benchmark)
// is only comparable across PRs if the same seed keeps producing the same
// trace; if this fails, generation changed — either revert the change or
// deliberately re-pin the digest AND note that committed benchmarks are no
// longer comparable with earlier revisions.
func TestGenerateGoldenDigest(t *testing.T) {
	const golden = uint64(0x2ea36bbe22da220b)
	a := azure(t, 100, 5, 7)
	b := azure(t, 100, 5, 7)
	// Full-stream determinism: same seed must agree on every field, not
	// just arrival times.
	for i := range a.Invocations {
		ai, bi := a.Invocations[i], b.Invocations[i]
		if ai.Function.Name != bi.Function.Name || ai.At != bi.At || ai.Exec != bi.Exec {
			t.Fatalf("same seed diverged at invocation %d: %v vs %v", i, ai, bi)
		}
	}
	if da, db := traceDigest(a), traceDigest(b); da != db {
		t.Fatalf("same config produced different digests: %#x vs %#x", da, db)
	}
	if got := traceDigest(a); got != golden {
		t.Fatalf("trace digest = %#x, want %#x; generation changed — committed "+
			"BENCH results are no longer comparable with earlier revisions", got, golden)
	}
	if other := traceDigest(azure(t, 100, 5, 8)); other == golden {
		t.Fatalf("different seed produced the golden digest")
	}
}

func TestClassMix(t *testing.T) {
	tr := azure(t, 2000, 5, 3)
	counts := make(map[Class]int)
	for _, fn := range tr.Functions {
		counts[fn.Class]++
	}
	if counts[ClassTimer] == 0 || counts[ClassPoisson] == 0 || counts[ClassBursty] == 0 || counts[ClassRare] == 0 {
		t.Errorf("class mix incomplete: %v", counts)
	}
	// Timer fraction should be near the default 30%.
	frac := float64(counts[ClassTimer]) / float64(len(tr.Functions))
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("timer fraction %.2f, want ~0.30", frac)
	}
}

func TestTimerFunctionsFireInUnison(t *testing.T) {
	tr := azure(t, 1000, 10, 5)
	// Count invocations landing exactly on 5-minute boundaries: timer
	// functions with the 5-minute period all fire at t=5m.
	atBoundary := 0
	for _, inv := range tr.Invocations {
		if inv.At == 5*time.Minute {
			atBoundary++
		}
	}
	if atBoundary < 10 {
		t.Errorf("only %d invocations at the 5-minute boundary; unison bursts missing", atBoundary)
	}
}

func TestExecutionTimeDistribution(t *testing.T) {
	tr := azure(t, 2000, 5, 9)
	var medians []float64
	for _, fn := range tr.Functions {
		medians = append(medians, float64(fn.ExecMedian))
	}
	sort.Float64s(medians)
	p50 := time.Duration(medians[len(medians)/2])
	// Half of all functions should execute within ~a second (paper §2.1).
	if p50 > time.Second {
		t.Errorf("median function exec median %v, want <= 1s", p50)
	}
	if p50 < 10*time.Millisecond {
		t.Errorf("median function exec median %v implausibly small", p50)
	}
}

func TestHeavyTailedRates(t *testing.T) {
	tr := azure(t, 3000, 5, 11)
	var rates []float64
	for _, fn := range tr.Functions {
		rates = append(rates, fn.RatePerMinute)
	}
	sort.Float64s(rates)
	mean := 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	median := rates[len(rates)/2]
	if mean < 2*median {
		t.Errorf("rate distribution not heavy-tailed: mean %.2f vs median %.2f", mean, median)
	}
}

func TestSamplePreservesMix(t *testing.T) {
	tr := azure(t, 2000, 5, 13)
	s := tr.Sample(200, 1)
	if len(s.Functions) > 200 || len(s.Functions) < 150 {
		t.Fatalf("sample size %d, want ~200", len(s.Functions))
	}
	// Sampled invocations must reference sampled functions only.
	picked := make(map[*FunctionSpec]bool)
	for _, fn := range s.Functions {
		picked[fn] = true
	}
	for _, inv := range s.Invocations {
		if !picked[inv.Function] {
			t.Fatalf("sampled trace references unsampled function")
		}
	}
	// Stratified sampling keeps both slow and hot functions.
	var minRate, maxRate float64 = math.Inf(1), 0
	for _, fn := range s.Functions {
		if fn.RatePerMinute < minRate {
			minRate = fn.RatePerMinute
		}
		if fn.RatePerMinute > maxRate {
			maxRate = fn.RatePerMinute
		}
	}
	if maxRate < 10*minRate {
		t.Errorf("sample lost the rate spread: [%f, %f]", minRate, maxRate)
	}
}

func TestSampleNLargerThanTraceReturnsSame(t *testing.T) {
	tr := azure(t, 50, 5, 1)
	if got := tr.Sample(100, 1); got != tr {
		t.Errorf("oversized sample should return the original trace")
	}
}

func TestRateStats(t *testing.T) {
	tr := azure(t, 500, 5, 15)
	buckets := tr.RateStats()
	if len(buckets) == 0 {
		t.Fatalf("no rate buckets")
	}
	var total float64
	for _, b := range buckets {
		total += b
	}
	if int(total) != tr.TotalInvocations() {
		t.Errorf("bucket sum %v != invocations %d", total, tr.TotalInvocations())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := azure(t, 50, 5, 17)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got.Functions) != len(tr.Functions) {
		t.Fatalf("functions = %d, want %d", len(got.Functions), len(tr.Functions))
	}
	if got.Duration != tr.Duration {
		t.Errorf("duration = %v, want %v", got.Duration, tr.Duration)
	}
	// Per-minute counts survive exactly even though within-minute
	// placement is resampled.
	origPerMin := perMinuteCounts(tr)
	gotPerMin := perMinuteCounts(got)
	for name, counts := range origPerMin {
		gc, ok := gotPerMin[name]
		if !ok {
			t.Fatalf("function %s missing after round trip", name)
		}
		for m := range counts {
			if counts[m] != gc[m] {
				t.Errorf("%s minute %d: %d != %d", name, m, counts[m], gc[m])
			}
		}
	}
}

func perMinuteCounts(tr *Trace) map[string][]int {
	out := make(map[string][]int)
	minutes := int(tr.Duration / time.Minute)
	for _, fn := range tr.Functions {
		out[fn.Name] = make([]int, minutes)
	}
	for _, inv := range tr.Invocations {
		m := int(inv.At / time.Minute)
		if m < minutes {
			out[inv.Function.Name][m]++
		}
	}
	return out
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n",
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,notanumber,128,1\n",
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,1.0,x,1\n",
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,1.0,128,-1\n",
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,1.0,128\n",       // short row
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,1.0,128,1,9\n",   // long row
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,+Inf,128,1\n",    // infinite exec
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,NaN,128,1\n",     // NaN exec
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,-1.0,128,1\n",    // negative exec
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,1.0,128,1.5\n",   // fractional count
		"HashFunction,ExecMedianMs,MemoryMB,1\nfn,1.0,128,1e999\n", // overflow count
	}
	for i, c := range cases {
		if _, err := ParseCSV(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

// TestQuickClassString ensures the Class stringer is total.
func TestQuickClassString(t *testing.T) {
	f := func(c uint8) bool { return Class(c).String() != "" }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
