package proto

import (
	"dirigent/internal/codec"
	"dirigent/internal/core"
)

// MethodInvokeSandbox is the DP → WN proxy hop: the data plane forwards an
// invocation to the worker hosting the chosen sandbox. In the paper's
// deployment the data plane proxies to the sandbox IP:port through
// iptables NAT on the worker; here the worker daemon performs the final
// dispatch, which preserves the same single-proxy-hop structure.
const MethodInvokeSandbox = "wn.InvokeSandbox"

// InvokeSandboxRequest carries a proxied invocation to a worker.
type InvokeSandboxRequest struct {
	SandboxID core.SandboxID
	Function  string
	Payload   []byte
}

// Marshal encodes the request.
func (m *InvokeSandboxRequest) Marshal() []byte {
	e := codec.NewEncoder(24 + len(m.Function) + len(m.Payload))
	e.U64(uint64(m.SandboxID))
	e.String(m.Function)
	e.RawBytes(m.Payload)
	return e.Bytes()
}

// UnmarshalInvokeSandboxRequest decodes an InvokeSandboxRequest.
func UnmarshalInvokeSandboxRequest(b []byte) (*InvokeSandboxRequest, error) {
	d := codec.NewDecoder(b)
	m := &InvokeSandboxRequest{}
	m.SandboxID = core.SandboxID(d.U64())
	m.Function = d.String()
	if p := d.RawBytes(); len(p) > 0 {
		m.Payload = append([]byte(nil), p...)
	}
	return m, wrap(d.Err(), "InvokeSandboxRequest")
}
