// Package proto defines the wire messages of the Dirigent API (paper
// Table 2). The bold client-facing operations are RegisterFunction,
// DeregisterFunction (to the control plane) and Invoke (to a data plane);
// the rest are internal calls between control plane (CP), data planes (DP),
// and worker nodes (WN). All messages use the compact binary codec —
// Dirigent's answer to the 17 KB YAML objects K8s serializes per update.
package proto

import (
	"fmt"
	"time"

	"dirigent/internal/codec"
	"dirigent/internal/core"
)

// RPC method names. The prefix identifies the callee component.
const (
	// Client → CP.
	MethodRegisterFunction   = "cp.RegisterFunction"
	MethodDeregisterFunction = "cp.DeregisterFunction"
	// Client → DP (via front-end load balancer).
	MethodInvoke = "dp.Invoke"
	// DP → CP.
	MethodRegisterDataPlane   = "cp.RegisterDataPlane"
	MethodDeregisterDataPlane = "cp.DeregisterDataPlane"
	MethodListFunctions       = "cp.ListFunctions"
	MethodScalingMetric       = "cp.ScalingMetric"
	MethodDataPlaneHeartbeat  = "cp.DataPlaneHeartbeat"
	// MethodListDataPlanes returns the live (heartbeat-fresh) data plane
	// replica set; the front-end load balancer polls it to keep its
	// membership in sync as replicas come and go.
	MethodListDataPlanes = "cp.ListDataPlanes"
	// CP → DP.
	MethodAddFunction     = "dp.AddFunction"
	MethodRemoveFunction  = "dp.RemoveFunction"
	MethodUpdateEndpoints = "dp.UpdateEndpoints"
	// MethodUpdateEndpointsBatch coalesces one autoscale sweep's endpoint
	// changes for every touched function into a single diff RPC per data
	// plane, replacing the seed's per-function broadcast fan-out.
	MethodUpdateEndpointsBatch = "dp.UpdateEndpointsBatch"
	// MethodAsyncLeaseGrant leases a dead replica's durable async queue
	// hashes to a surviving replica at an epoch; the lessee drains the
	// dead owner's records through its own dispatch loops, fencing every
	// settlement with the epoch.
	MethodAsyncLeaseGrant = "dp.AsyncLeaseGrant"
	// MethodAsyncLeaseRevoke retracts outstanding leases on an owner's
	// hashes (the owner revived at a newer epoch); lessees stop draining
	// and drop still-queued leased tasks without executing them.
	MethodAsyncLeaseRevoke = "dp.AsyncLeaseRevoke"
	// CP → WN.
	MethodCreateSandbox = "wn.CreateSandbox"
	// MethodCreateSandboxBatch carries every placement decision an
	// autoscale sweep made for one worker in a single RPC, amortizing
	// per-call transport and handler cost across a burst of cold starts.
	MethodCreateSandboxBatch = "wn.CreateSandboxBatch"
	MethodKillSandbox        = "wn.KillSandbox"
	// MethodKillSandboxBatch carries every teardown an autoscale
	// scale-down (or function deregistration) assigned to one worker in a
	// single RPC, mirroring MethodCreateSandboxBatch on the way down.
	MethodKillSandboxBatch = "wn.KillSandboxBatch"
	MethodListSandboxes    = "wn.ListSandboxes"
	// MethodPrewarmTargets pushes the predictor's per-image pre-warm pool
	// targets to a worker. Piggybacked on the reconcile sweep: a worker is
	// contacted only when its last acknowledged generation is stale.
	MethodPrewarmTargets = "wn.PrewarmTargets"
	// WN → CP.
	MethodRegisterWorker   = "cp.RegisterWorker"
	MethodDeregisterWorker = "cp.DeregisterWorker"
	MethodWorkerHeartbeat  = "cp.WorkerHeartbeat"
	MethodSandboxReady     = "cp.SandboxReady"
	// MethodSandboxReadyBatch reports every sandbox that became ready
	// while the worker's previous readiness RPC was in flight, so a burst
	// of creations costs O(RPCs in flight) instead of O(sandboxes).
	MethodSandboxReadyBatch = "cp.SandboxReadyBatch"
	MethodSandboxCrashed    = "cp.SandboxCrashed"
	// Relay → CP (hierarchical liveness tier). Workers report liveness to
	// a relay with the ordinary per-worker methods above; each relay ships
	// one aggregated RPC per flush period, so the control plane absorbs
	// O(relays) liveness calls per period instead of O(workers).
	// MethodWorkerHeartbeatBatch carries every worker sample a relay
	// absorbed since its last flush, plus the workers it stopped hearing
	// from (early failure hints the CP verifies against its own stamps).
	MethodWorkerHeartbeatBatch = "cp.WorkerHeartbeatBatch"
	// MethodRegisterWorkerBatch group-commits a registration storm: every
	// worker that asked its relay to register while the relay's previous
	// registration RPC was in flight shares one CP round trip.
	MethodRegisterWorkerBatch = "cp.RegisterWorkerBatch"
	// CP ↔ CP (leader election + log replication).
	MethodRequestVote = "cp.RequestVote"
	MethodLeaderPing  = "cp.LeaderPing"
	// MethodAppendEntries ships pipelined, group-committed batches of
	// replicated store ops from the CP leader to followers; an empty
	// batch doubles as the leader heartbeat and carries the commit index.
	MethodAppendEntries = "cp.AppendEntries"
	MethodClusterStatus = "cp.ClusterStatus"
)

// InvokeRequest carries one function invocation through the data plane.
type InvokeRequest struct {
	Function string
	// Async selects the asynchronous invocation mode (paper §3.3): the
	// request is durably queued and retried on timeout (at-least-once).
	Async bool
	// Payload is the opaque request body forwarded to the sandbox.
	Payload []byte
}

// Marshal encodes the request.
func (m *InvokeRequest) Marshal() []byte {
	e := codec.NewEncoder(16 + len(m.Function) + len(m.Payload))
	e.String(m.Function)
	e.Bool(m.Async)
	e.RawBytes(m.Payload)
	return e.Bytes()
}

// UnmarshalInvokeRequest decodes an InvokeRequest.
func UnmarshalInvokeRequest(b []byte) (*InvokeRequest, error) {
	d := codec.NewDecoder(b)
	m := &InvokeRequest{}
	m.Function = d.String()
	m.Async = d.Bool()
	if p := d.RawBytes(); len(p) > 0 {
		m.Payload = append([]byte(nil), p...)
	}
	return m, wrap(d.Err(), "InvokeRequest")
}

// InvokeResponse carries the function result (or async acceptance) back.
type InvokeResponse struct {
	// ColdStart reports whether this invocation had to wait for a sandbox.
	ColdStart bool
	// SchedulingLatencyUs is time spent in the cluster manager (queueing,
	// placement, sandbox wait), i.e. end-to-end minus function execution.
	SchedulingLatencyUs int64
	// Body is the function's response payload (empty for async accept).
	Body []byte
}

// Marshal encodes the response.
func (m *InvokeResponse) Marshal() []byte {
	e := codec.NewEncoder(16 + len(m.Body))
	e.Bool(m.ColdStart)
	e.I64(m.SchedulingLatencyUs)
	e.RawBytes(m.Body)
	return e.Bytes()
}

// UnmarshalInvokeResponse decodes an InvokeResponse.
func UnmarshalInvokeResponse(b []byte) (*InvokeResponse, error) {
	d := codec.NewDecoder(b)
	m := &InvokeResponse{}
	m.ColdStart = d.Bool()
	m.SchedulingLatencyUs = d.I64()
	if p := d.RawBytes(); len(p) > 0 {
		m.Body = append([]byte(nil), p...)
	}
	return m, wrap(d.Err(), "InvokeResponse")
}

// CreateSandboxRequest instructs a worker to spin up a sandbox.
type CreateSandboxRequest struct {
	SandboxID core.SandboxID
	Function  core.Function
}

// Marshal encodes the request.
func (m *CreateSandboxRequest) Marshal() []byte {
	e := codec.NewEncoder(96)
	e.U64(uint64(m.SandboxID))
	e.RawBytes(core.MarshalFunction(&m.Function))
	return e.Bytes()
}

// UnmarshalCreateSandboxRequest decodes a CreateSandboxRequest.
func UnmarshalCreateSandboxRequest(b []byte) (*CreateSandboxRequest, error) {
	d := codec.NewDecoder(b)
	m := &CreateSandboxRequest{}
	m.SandboxID = core.SandboxID(d.U64())
	fb := d.RawBytes()
	if err := d.Err(); err != nil {
		return nil, wrap(err, "CreateSandboxRequest")
	}
	f, err := core.UnmarshalFunction(fb)
	if err != nil {
		return nil, wrap(err, "CreateSandboxRequest")
	}
	m.Function = *f
	return m, nil
}

// CreateSandboxBatch instructs a worker to spin up several sandboxes in
// one RPC: all the placement decisions one autoscale sweep assigned to
// that worker (paper §3.3 batches scheduling decisions; this is what
// keeps the cold-start control path O(workers), not O(sandboxes)).
type CreateSandboxBatch struct {
	Creates []CreateSandboxRequest
}

// Marshal encodes the batch.
func (m *CreateSandboxBatch) Marshal() []byte {
	e := codec.NewEncoder(16 + 112*len(m.Creates))
	e.U32(uint32(len(m.Creates)))
	for i := range m.Creates {
		e.RawBytes(m.Creates[i].Marshal())
	}
	return e.Bytes()
}

// UnmarshalCreateSandboxBatch decodes a CreateSandboxBatch.
func UnmarshalCreateSandboxBatch(b []byte) (*CreateSandboxBatch, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &CreateSandboxBatch{}
	for i := 0; i < n && d.Err() == nil; i++ {
		rb := d.RawBytes()
		if d.Err() != nil {
			break
		}
		req, err := UnmarshalCreateSandboxRequest(rb)
		if err != nil {
			return nil, wrap(err, "CreateSandboxBatch")
		}
		m.Creates = append(m.Creates, *req)
	}
	return m, wrap(d.Err(), "CreateSandboxBatch")
}

// SandboxInfo describes one sandbox in worker reports and endpoint updates.
type SandboxInfo struct {
	ID       core.SandboxID
	Function string
	Node     core.NodeID
	Addr     string
	State    core.SandboxState
}

func (m *SandboxInfo) encode(e *codec.Encoder) {
	e.U64(uint64(m.ID))
	e.String(m.Function)
	e.U16(uint16(m.Node))
	e.String(m.Addr)
	e.U8(uint8(m.State))
}

func decodeSandboxInfo(d *codec.Decoder) SandboxInfo {
	var m SandboxInfo
	m.ID = core.SandboxID(d.U64())
	m.Function = d.String()
	m.Node = core.NodeID(d.U16())
	m.Addr = d.String()
	m.State = core.SandboxState(d.U8())
	return m
}

// SandboxList is a list of sandboxes: the ListSandboxes response and the
// recovery report a worker sends after a control-plane failover.
type SandboxList struct {
	Sandboxes []SandboxInfo
}

// Marshal encodes the list.
func (m *SandboxList) Marshal() []byte {
	e := codec.NewEncoder(16 + 48*len(m.Sandboxes))
	e.U32(uint32(len(m.Sandboxes)))
	for i := range m.Sandboxes {
		m.Sandboxes[i].encode(e)
	}
	return e.Bytes()
}

// UnmarshalSandboxList decodes a SandboxList.
func UnmarshalSandboxList(b []byte) (*SandboxList, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &SandboxList{}
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Sandboxes = append(m.Sandboxes, decodeSandboxInfo(d))
	}
	return m, wrap(d.Err(), "SandboxList")
}

// EndpointUpdate is the CP → DP broadcast refreshing a function's ready
// endpoints (paper Table 2, "Add/remove LB endpoint"). Updates carry the
// full endpoint list plus a monotonically increasing version (leadership
// epoch in the high bits, per-function sequence in the low bits) so that
// data planes can discard broadcasts that arrive out of order.
type EndpointUpdate struct {
	Function  string
	Version   uint64
	Endpoints []SandboxInfo
}

// Marshal encodes the update.
func (m *EndpointUpdate) Marshal() []byte {
	e := codec.NewEncoder(40 + 48*len(m.Endpoints))
	e.String(m.Function)
	e.U64(m.Version)
	e.U32(uint32(len(m.Endpoints)))
	for i := range m.Endpoints {
		m.Endpoints[i].encode(e)
	}
	return e.Bytes()
}

// UnmarshalEndpointUpdate decodes an EndpointUpdate.
func UnmarshalEndpointUpdate(b []byte) (*EndpointUpdate, error) {
	d := codec.NewDecoder(b)
	m := &EndpointUpdate{}
	m.Function = d.String()
	m.Version = d.U64()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Endpoints = append(m.Endpoints, decodeSandboxInfo(d))
	}
	return m, wrap(d.Err(), "EndpointUpdate")
}

// EndpointUpdateBatch carries one endpoint diff per changed function,
// all in a single CP → DP RPC. Each inner update keeps its own version,
// so per-function reordering protection is unchanged.
type EndpointUpdateBatch struct {
	Updates []EndpointUpdate
}

// Marshal encodes the batch.
func (m *EndpointUpdateBatch) Marshal() []byte {
	e := codec.NewEncoder(16 + 96*len(m.Updates))
	e.U32(uint32(len(m.Updates)))
	for i := range m.Updates {
		e.RawBytes(m.Updates[i].Marshal())
	}
	return e.Bytes()
}

// UnmarshalEndpointUpdateBatch decodes an EndpointUpdateBatch.
func UnmarshalEndpointUpdateBatch(b []byte) (*EndpointUpdateBatch, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &EndpointUpdateBatch{}
	for i := 0; i < n && d.Err() == nil; i++ {
		ub := d.RawBytes()
		if d.Err() != nil {
			break
		}
		up, err := UnmarshalEndpointUpdate(ub)
		if err != nil {
			return nil, wrap(err, "EndpointUpdateBatch")
		}
		m.Updates = append(m.Updates, *up)
	}
	return m, wrap(d.Err(), "EndpointUpdateBatch")
}

// ScalingMetricReport batches per-function scaling metrics from a DP.
type ScalingMetricReport struct {
	DataPlane core.DataPlaneID
	Metrics   []core.ScalingMetric
}

// Marshal encodes the report.
func (m *ScalingMetricReport) Marshal() []byte {
	e := codec.NewEncoder(16 + 32*len(m.Metrics))
	e.U16(uint16(m.DataPlane))
	e.U32(uint32(len(m.Metrics)))
	for i := range m.Metrics {
		mm := &m.Metrics[i]
		e.String(mm.Function)
		e.I64(int64(mm.InFlight))
		e.I64(int64(mm.QueueDepth))
		e.I64(mm.At.UnixNano())
	}
	return e.Bytes()
}

// UnmarshalScalingMetricReport decodes a ScalingMetricReport.
func UnmarshalScalingMetricReport(b []byte) (*ScalingMetricReport, error) {
	d := codec.NewDecoder(b)
	m := &ScalingMetricReport{}
	m.DataPlane = core.DataPlaneID(d.U16())
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		var mm core.ScalingMetric
		mm.Function = d.String()
		mm.InFlight = int(d.I64())
		mm.QueueDepth = int(d.I64())
		mm.At = time.Unix(0, d.I64())
		m.Metrics = append(m.Metrics, mm)
	}
	return m, wrap(d.Err(), "ScalingMetricReport")
}

// WorkerHeartbeat is the WN → CP liveness and utilization signal.
type WorkerHeartbeat struct {
	Node core.NodeID
	Util core.NodeUtilization
}

// Marshal encodes the heartbeat. The trailing cache digest (sorted image
// hashes, see core.NodeUtilization) feeds cache-locality-aware placement;
// it also rides relay heartbeat batches unchanged, since the batch nests
// whole marshaled heartbeats.
func (m *WorkerHeartbeat) Marshal() []byte {
	e := codec.NewEncoder(48 + 8*len(m.Util.CacheDigest))
	e.U16(uint16(m.Node))
	e.I64(int64(m.Util.CPUMilliUsed))
	e.I64(int64(m.Util.MemoryMBUsed))
	e.I64(int64(m.Util.SandboxCount))
	e.I64(int64(m.Util.CreationQueue))
	e.U32(uint32(len(m.Util.CacheDigest)))
	for _, h := range m.Util.CacheDigest {
		e.U64(h)
	}
	return e.Bytes()
}

// UnmarshalWorkerHeartbeat decodes a WorkerHeartbeat.
func UnmarshalWorkerHeartbeat(b []byte) (*WorkerHeartbeat, error) {
	d := codec.NewDecoder(b)
	m := &WorkerHeartbeat{}
	m.Node = core.NodeID(d.U16())
	m.Util.Node = m.Node
	m.Util.CPUMilliUsed = int(d.I64())
	m.Util.MemoryMBUsed = int(d.I64())
	m.Util.SandboxCount = int(d.I64())
	m.Util.CreationQueue = int(d.I64())
	for n := int(d.U32()); n > 0 && d.Err() == nil; n-- {
		m.Util.CacheDigest = append(m.Util.CacheDigest, d.U64())
	}
	return m, wrap(d.Err(), "WorkerHeartbeat")
}

// RegisterWorkerRequest announces a worker node to the control plane.
type RegisterWorkerRequest struct {
	Worker core.WorkerNode
}

// Marshal encodes the request.
func (m *RegisterWorkerRequest) Marshal() []byte {
	return core.MarshalWorkerNode(&m.Worker)
}

// UnmarshalRegisterWorkerRequest decodes a RegisterWorkerRequest.
func UnmarshalRegisterWorkerRequest(b []byte) (*RegisterWorkerRequest, error) {
	w, err := core.UnmarshalWorkerNode(b)
	if err != nil {
		return nil, wrap(err, "RegisterWorkerRequest")
	}
	return &RegisterWorkerRequest{Worker: *w}, nil
}

// WorkerHeartbeatBatch is one relay flush: the latest liveness and
// utilization sample of every worker that reported to the relay since its
// previous flush, plus the node IDs the relay has stopped hearing from
// (Missing). The relay's own clock is deliberately absent — the control
// plane stamps every carried sample with the batch's arrival time, so
// liveness judgment never trusts a relay-side timestamp.
type WorkerHeartbeatBatch struct {
	// Relay identifies the sending relay (its RPC address); the control
	// plane tracks relay freshness under this key to turn a silent relay
	// into a correlated mass-timeout check rather than a mystery.
	Relay string
	// Missing lists workers that registered with this relay but have been
	// silent past the relay's miss threshold — an early hint the CP
	// verifies against its own per-worker stamps before failing anyone.
	Missing []core.NodeID
	// Beats are the aggregated per-worker samples.
	Beats []WorkerHeartbeat
}

// Marshal encodes the batch.
func (m *WorkerHeartbeatBatch) Marshal() []byte {
	e := codec.NewEncoder(16 + len(m.Relay) + 2*len(m.Missing) + 48*len(m.Beats))
	e.String(m.Relay)
	e.U32(uint32(len(m.Missing)))
	for _, id := range m.Missing {
		e.U16(uint16(id))
	}
	e.U32(uint32(len(m.Beats)))
	for i := range m.Beats {
		e.RawBytes(m.Beats[i].Marshal())
	}
	return e.Bytes()
}

// UnmarshalWorkerHeartbeatBatch decodes a WorkerHeartbeatBatch.
func UnmarshalWorkerHeartbeatBatch(b []byte) (*WorkerHeartbeatBatch, error) {
	d := codec.NewDecoder(b)
	m := &WorkerHeartbeatBatch{}
	m.Relay = d.String()
	nm := int(d.U32())
	for i := 0; i < nm && d.Err() == nil; i++ {
		m.Missing = append(m.Missing, core.NodeID(d.U16()))
	}
	nb := int(d.U32())
	for i := 0; i < nb && d.Err() == nil; i++ {
		rb := d.RawBytes()
		if d.Err() != nil {
			break
		}
		hb, err := UnmarshalWorkerHeartbeat(rb)
		if err != nil {
			return nil, wrap(err, "WorkerHeartbeatBatch")
		}
		m.Beats = append(m.Beats, *hb)
	}
	return m, wrap(d.Err(), "WorkerHeartbeatBatch")
}

// PrewarmTarget is one image's desired cluster-wide pre-warm pool size.
type PrewarmTarget struct {
	Image string
	Want  uint32
}

// PrewarmTargets is the CP → WN push of the predictor's per-image demand
// estimates. Wants are cluster-wide; each worker apportions its own
// -prewarm budget across them proportionally (leftover capacity keeps
// warming the generic base image). Gen is the CP-side target generation,
// bumped whenever the estimates change, so the sweep re-pushes only to
// workers holding a stale generation (and to freshly re-registered ones,
// which start at generation zero).
type PrewarmTargets struct {
	Gen     uint64
	Targets []PrewarmTarget
}

// Marshal encodes the push.
func (m *PrewarmTargets) Marshal() []byte {
	e := codec.NewEncoder(16 + 32*len(m.Targets))
	e.U64(m.Gen)
	e.U32(uint32(len(m.Targets)))
	for i := range m.Targets {
		e.String(m.Targets[i].Image)
		e.U32(m.Targets[i].Want)
	}
	return e.Bytes()
}

// UnmarshalPrewarmTargets decodes a PrewarmTargets.
func UnmarshalPrewarmTargets(b []byte) (*PrewarmTargets, error) {
	d := codec.NewDecoder(b)
	m := &PrewarmTargets{}
	m.Gen = d.U64()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Targets = append(m.Targets, PrewarmTarget{Image: d.String(), Want: d.U32()})
	}
	return m, wrap(d.Err(), "PrewarmTargets")
}

// RegisterWorkerBatch group-commits a registration storm through a relay:
// every worker announcement the relay accumulated while its previous
// registration RPC was in flight, in one CP round trip.
type RegisterWorkerBatch struct {
	// Relay identifies the sending relay (its RPC address).
	Relay string
	// Workers are the announced worker nodes.
	Workers []core.WorkerNode
}

// Marshal encodes the batch.
func (m *RegisterWorkerBatch) Marshal() []byte {
	e := codec.NewEncoder(16 + len(m.Relay) + 64*len(m.Workers))
	e.String(m.Relay)
	e.U32(uint32(len(m.Workers)))
	for i := range m.Workers {
		e.RawBytes(core.MarshalWorkerNode(&m.Workers[i]))
	}
	return e.Bytes()
}

// UnmarshalRegisterWorkerBatch decodes a RegisterWorkerBatch.
func UnmarshalRegisterWorkerBatch(b []byte) (*RegisterWorkerBatch, error) {
	d := codec.NewDecoder(b)
	m := &RegisterWorkerBatch{}
	m.Relay = d.String()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		rb := d.RawBytes()
		if d.Err() != nil {
			break
		}
		w, err := core.UnmarshalWorkerNode(rb)
		if err != nil {
			return nil, wrap(err, "RegisterWorkerBatch")
		}
		m.Workers = append(m.Workers, *w)
	}
	return m, wrap(d.Err(), "RegisterWorkerBatch")
}

// RegisterDataPlaneRequest announces a data plane replica to the CP.
// Durable replicas also advertise the store hashes their async queue
// writes, so the control plane knows what to lease to survivors if this
// replica is later pruned.
type RegisterDataPlaneRequest struct {
	DataPlane   core.DataPlane
	Durable     bool     // replica persists async tasks to a store
	AsyncHashes []string // store hashes holding this replica's async records
}

// Marshal encodes the request.
func (m *RegisterDataPlaneRequest) Marshal() []byte {
	e := codec.NewEncoder(48 + 16*len(m.AsyncHashes))
	e.RawBytes(core.MarshalDataPlane(&m.DataPlane))
	e.Bool(m.Durable)
	e.U32(uint32(len(m.AsyncHashes)))
	for _, h := range m.AsyncHashes {
		e.String(h)
	}
	return e.Bytes()
}

// UnmarshalRegisterDataPlaneRequest decodes a RegisterDataPlaneRequest.
func UnmarshalRegisterDataPlaneRequest(b []byte) (*RegisterDataPlaneRequest, error) {
	d := codec.NewDecoder(b)
	m := &RegisterDataPlaneRequest{}
	pb := d.RawBytes()
	if d.Err() != nil {
		return nil, wrap(d.Err(), "RegisterDataPlaneRequest")
	}
	p, err := core.UnmarshalDataPlane(pb)
	if err != nil {
		return nil, wrap(err, "RegisterDataPlaneRequest")
	}
	m.DataPlane = *p
	m.Durable = d.Bool()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.AsyncHashes = append(m.AsyncHashes, d.String())
	}
	return m, wrap(d.Err(), "RegisterDataPlaneRequest")
}

// DataPlaneEpochAck is the CP's reply to a data plane registration or
// heartbeat: the queue epoch assigned to the replica. The replica adopts
// the maximum epoch it has seen, bumping its settlement fence, so a
// revived replica re-admitted at a newer epoch out-fences any lessee
// still draining its records at an older one.
type DataPlaneEpochAck struct {
	Epoch uint64
}

// Marshal encodes the ack.
func (m *DataPlaneEpochAck) Marshal() []byte {
	e := codec.NewEncoder(8)
	e.U64(m.Epoch)
	return e.Bytes()
}

// UnmarshalDataPlaneEpochAck decodes a DataPlaneEpochAck. An empty
// payload (a control plane predating queue epochs) decodes as epoch 0,
// which replicas treat as "no epoch assigned".
func UnmarshalDataPlaneEpochAck(b []byte) (*DataPlaneEpochAck, error) {
	if len(b) == 0 {
		return &DataPlaneEpochAck{}, nil
	}
	d := codec.NewDecoder(b)
	m := &DataPlaneEpochAck{Epoch: d.U64()}
	return m, wrap(d.Err(), "DataPlaneEpochAck")
}

// AsyncLease grants the receiving replica the right to drain a dead
// owner's async records from the listed store hashes at the given epoch.
// All settlements under the lease are fenced by the epoch: if the owner
// revives (or the lease is re-issued elsewhere) at a newer epoch, the
// store rejects this lessee's settles and it abandons the lease.
type AsyncLease struct {
	Owner  core.DataPlaneID
	Epoch  uint64
	Hashes []string
}

// Marshal encodes the lease grant.
func (m *AsyncLease) Marshal() []byte {
	e := codec.NewEncoder(16 + 16*len(m.Hashes))
	e.U16(uint16(m.Owner))
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Hashes)))
	for _, h := range m.Hashes {
		e.String(h)
	}
	return e.Bytes()
}

// UnmarshalAsyncLease decodes an AsyncLease.
func UnmarshalAsyncLease(b []byte) (*AsyncLease, error) {
	d := codec.NewDecoder(b)
	m := &AsyncLease{}
	m.Owner = core.DataPlaneID(d.U16())
	m.Epoch = d.U64()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		m.Hashes = append(m.Hashes, d.String())
	}
	return m, wrap(d.Err(), "AsyncLease")
}

// AsyncLeaseRevoke retracts every lease on the owner's records older
// than Epoch (the owner's revival epoch). Lessees drop still-queued
// leased tasks without executing them; the records stay durable for the
// revived owner to drain.
type AsyncLeaseRevoke struct {
	Owner core.DataPlaneID
	Epoch uint64
}

// Marshal encodes the revocation.
func (m *AsyncLeaseRevoke) Marshal() []byte {
	e := codec.NewEncoder(10)
	e.U16(uint16(m.Owner))
	e.U64(m.Epoch)
	return e.Bytes()
}

// UnmarshalAsyncLeaseRevoke decodes an AsyncLeaseRevoke.
func UnmarshalAsyncLeaseRevoke(b []byte) (*AsyncLeaseRevoke, error) {
	d := codec.NewDecoder(b)
	m := &AsyncLeaseRevoke{Owner: core.DataPlaneID(d.U16()), Epoch: d.U64()}
	return m, wrap(d.Err(), "AsyncLeaseRevoke")
}

// DataPlaneHeartbeat is the DP → CP liveness signal. It carries the full
// replica identity so a control plane that lost the in-memory registry
// entry (e.g. a heartbeat racing a leadership recovery) can re-admit the
// replica without waiting for it to restart and re-register.
type DataPlaneHeartbeat struct {
	DataPlane core.DataPlane
}

// Marshal encodes the heartbeat.
func (m *DataPlaneHeartbeat) Marshal() []byte {
	return core.MarshalDataPlane(&m.DataPlane)
}

// UnmarshalDataPlaneHeartbeat decodes a DataPlaneHeartbeat.
func UnmarshalDataPlaneHeartbeat(b []byte) (*DataPlaneHeartbeat, error) {
	p, err := core.UnmarshalDataPlane(b)
	if err != nil {
		return nil, wrap(err, "DataPlaneHeartbeat")
	}
	return &DataPlaneHeartbeat{DataPlane: *p}, nil
}

// DataPlaneList is the ListDataPlanes response: the replicas the control
// plane currently considers live (registered and heartbeat-fresh).
type DataPlaneList struct {
	DataPlanes []core.DataPlane
}

// Marshal encodes the list.
func (m *DataPlaneList) Marshal() []byte {
	e := codec.NewEncoder(16 + 24*len(m.DataPlanes))
	e.U32(uint32(len(m.DataPlanes)))
	for i := range m.DataPlanes {
		e.RawBytes(core.MarshalDataPlane(&m.DataPlanes[i]))
	}
	return e.Bytes()
}

// UnmarshalDataPlaneList decodes a DataPlaneList.
func UnmarshalDataPlaneList(b []byte) (*DataPlaneList, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &DataPlaneList{}
	for i := 0; i < n && d.Err() == nil; i++ {
		pb := d.RawBytes()
		if d.Err() != nil {
			break
		}
		p, err := core.UnmarshalDataPlane(pb)
		if err != nil {
			return nil, wrap(err, "DataPlaneList")
		}
		m.DataPlanes = append(m.DataPlanes, *p)
	}
	return m, wrap(d.Err(), "DataPlaneList")
}

// KillSandboxBatch instructs a worker to tear down several sandboxes in
// one RPC: every teardown one autoscale scale-down assigned to that
// worker, the downscale mirror of CreateSandboxBatch.
type KillSandboxBatch struct {
	IDs []core.SandboxID
}

// Marshal encodes the batch.
func (m *KillSandboxBatch) Marshal() []byte {
	e := codec.NewEncoder(16 + 8*len(m.IDs))
	e.U32(uint32(len(m.IDs)))
	for _, id := range m.IDs {
		e.U64(uint64(id))
	}
	return e.Bytes()
}

// UnmarshalKillSandboxBatch decodes a KillSandboxBatch.
func UnmarshalKillSandboxBatch(b []byte) (*KillSandboxBatch, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &KillSandboxBatch{}
	for i := 0; i < n && d.Err() == nil; i++ {
		m.IDs = append(m.IDs, core.SandboxID(d.U64()))
	}
	return m, wrap(d.Err(), "KillSandboxBatch")
}

// SandboxEvent reports a sandbox lifecycle transition (ready or crashed)
// from a worker to the control plane.
type SandboxEvent struct {
	SandboxID core.SandboxID
	Function  string
	Node      core.NodeID
	Addr      string
}

// Marshal encodes the event.
func (m *SandboxEvent) Marshal() []byte {
	e := codec.NewEncoder(32 + len(m.Function) + len(m.Addr))
	e.U64(uint64(m.SandboxID))
	e.String(m.Function)
	e.U16(uint16(m.Node))
	e.String(m.Addr)
	return e.Bytes()
}

// UnmarshalSandboxEvent decodes a SandboxEvent.
func UnmarshalSandboxEvent(b []byte) (*SandboxEvent, error) {
	d := codec.NewDecoder(b)
	m := &SandboxEvent{}
	m.SandboxID = core.SandboxID(d.U64())
	m.Function = d.String()
	m.Node = core.NodeID(d.U16())
	m.Addr = d.String()
	return m, wrap(d.Err(), "SandboxEvent")
}

// SandboxEventBatch reports several sandbox lifecycle transitions in one
// WN → CP RPC; the worker coalesces whatever became ready while its
// previous report was in flight.
type SandboxEventBatch struct {
	Events []SandboxEvent
}

// Marshal encodes the batch.
func (m *SandboxEventBatch) Marshal() []byte {
	e := codec.NewEncoder(16 + 48*len(m.Events))
	e.U32(uint32(len(m.Events)))
	for i := range m.Events {
		e.RawBytes(m.Events[i].Marshal())
	}
	return e.Bytes()
}

// UnmarshalSandboxEventBatch decodes a SandboxEventBatch.
func UnmarshalSandboxEventBatch(b []byte) (*SandboxEventBatch, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &SandboxEventBatch{}
	for i := 0; i < n && d.Err() == nil; i++ {
		eb := d.RawBytes()
		if d.Err() != nil {
			break
		}
		ev, err := UnmarshalSandboxEvent(eb)
		if err != nil {
			return nil, wrap(err, "SandboxEventBatch")
		}
		m.Events = append(m.Events, *ev)
	}
	return m, wrap(d.Err(), "SandboxEventBatch")
}

// FunctionList carries registered functions from CP to DP caches.
type FunctionList struct {
	Functions []core.Function
}

// Marshal encodes the list.
func (m *FunctionList) Marshal() []byte {
	e := codec.NewEncoder(16 + 128*len(m.Functions))
	e.U32(uint32(len(m.Functions)))
	for i := range m.Functions {
		e.RawBytes(core.MarshalFunction(&m.Functions[i]))
	}
	return e.Bytes()
}

// UnmarshalFunctionList decodes a FunctionList.
func UnmarshalFunctionList(b []byte) (*FunctionList, error) {
	d := codec.NewDecoder(b)
	n := int(d.U32())
	m := &FunctionList{}
	for i := 0; i < n && d.Err() == nil; i++ {
		fb := d.RawBytes()
		if d.Err() != nil {
			break
		}
		f, err := core.UnmarshalFunction(fb)
		if err != nil {
			return nil, wrap(err, "FunctionList")
		}
		m.Functions = append(m.Functions, *f)
	}
	return m, wrap(d.Err(), "FunctionList")
}

// VoteRequest is the Raft leader-election RPC between CP replicas. The
// candidate's last log position enforces the election restriction: voters
// reject candidates whose replicated log is behind their own, so a leader
// always holds every committed entry.
type VoteRequest struct {
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

// Marshal encodes the request.
func (m *VoteRequest) Marshal() []byte {
	e := codec.NewEncoder(40 + len(m.Candidate))
	e.U64(m.Term)
	e.String(m.Candidate)
	e.U64(m.LastLogIndex)
	e.U64(m.LastLogTerm)
	return e.Bytes()
}

// UnmarshalVoteRequest decodes a VoteRequest.
func UnmarshalVoteRequest(b []byte) (*VoteRequest, error) {
	d := codec.NewDecoder(b)
	m := &VoteRequest{}
	m.Term = d.U64()
	m.Candidate = d.String()
	m.LastLogIndex = d.U64()
	m.LastLogTerm = d.U64()
	return m, wrap(d.Err(), "VoteRequest")
}

// VoteResponse answers a VoteRequest.
type VoteResponse struct {
	Term    uint64
	Granted bool
}

// Marshal encodes the response.
func (m *VoteResponse) Marshal() []byte {
	e := codec.NewEncoder(16)
	e.U64(m.Term)
	e.Bool(m.Granted)
	return e.Bytes()
}

// UnmarshalVoteResponse decodes a VoteResponse.
func UnmarshalVoteResponse(b []byte) (*VoteResponse, error) {
	d := codec.NewDecoder(b)
	m := &VoteResponse{}
	m.Term = d.U64()
	m.Granted = d.Bool()
	return m, wrap(d.Err(), "VoteResponse")
}

// LeaderPing is the Raft heartbeat from the CP leader to followers.
type LeaderPing struct {
	Term   uint64
	Leader string
}

// Marshal encodes the ping.
func (m *LeaderPing) Marshal() []byte {
	e := codec.NewEncoder(24 + len(m.Leader))
	e.U64(m.Term)
	e.String(m.Leader)
	return e.Bytes()
}

// UnmarshalLeaderPing decodes a LeaderPing.
func UnmarshalLeaderPing(b []byte) (*LeaderPing, error) {
	d := codec.NewDecoder(b)
	m := &LeaderPing{}
	m.Term = d.U64()
	m.Leader = d.String()
	return m, wrap(d.Err(), "LeaderPing")
}

// LogEntry is one replicated command in the control plane's Raft log: an
// opaque marshaled store mutation stamped with the term it was proposed in.
type LogEntry struct {
	Term uint64
	Data []byte
}

// AppendEntriesRequest replicates a batch of log entries (possibly empty —
// the heartbeat) from the CP leader to one follower. PrevIndex/PrevTerm
// anchor the batch for the Raft log-matching check; CommitIndex lets the
// follower advance its applied state. Many concurrent proposals coalesce
// into one request — the wire-level analogue of wal.FsyncGroup's
// leader-elected flusher.
type AppendEntriesRequest struct {
	Term        uint64
	Leader      string
	PrevIndex   uint64
	PrevTerm    uint64
	CommitIndex uint64
	Entries     []LogEntry
}

// Marshal encodes the request.
func (m *AppendEntriesRequest) Marshal() []byte {
	size := 64 + len(m.Leader)
	for i := range m.Entries {
		size += 16 + len(m.Entries[i].Data)
	}
	e := codec.NewEncoder(size)
	e.U64(m.Term)
	e.String(m.Leader)
	e.U64(m.PrevIndex)
	e.U64(m.PrevTerm)
	e.U64(m.CommitIndex)
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.U64(m.Entries[i].Term)
		e.RawBytes(m.Entries[i].Data)
	}
	return e.Bytes()
}

// UnmarshalAppendEntriesRequest decodes an AppendEntriesRequest.
func UnmarshalAppendEntriesRequest(b []byte) (*AppendEntriesRequest, error) {
	d := codec.NewDecoder(b)
	m := &AppendEntriesRequest{}
	m.Term = d.U64()
	m.Leader = d.String()
	m.PrevIndex = d.U64()
	m.PrevTerm = d.U64()
	m.CommitIndex = d.U64()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		var ent LogEntry
		ent.Term = d.U64()
		if raw := d.RawBytes(); len(raw) > 0 {
			ent.Data = append([]byte(nil), raw...)
		}
		m.Entries = append(m.Entries, ent)
	}
	return m, wrap(d.Err(), "AppendEntriesRequest")
}

// AppendEntriesResponse acknowledges an AppendEntriesRequest. MatchIndex
// reports the highest log index the follower matches on success, and a
// backtracking hint (the follower's log length) on rejection, so the
// leader re-anchors in one round instead of probing one index at a time.
type AppendEntriesResponse struct {
	Term       uint64
	Success    bool
	MatchIndex uint64
}

// Marshal encodes the response.
func (m *AppendEntriesResponse) Marshal() []byte {
	e := codec.NewEncoder(24)
	e.U64(m.Term)
	e.Bool(m.Success)
	e.U64(m.MatchIndex)
	return e.Bytes()
}

// UnmarshalAppendEntriesResponse decodes an AppendEntriesResponse.
func UnmarshalAppendEntriesResponse(b []byte) (*AppendEntriesResponse, error) {
	d := codec.NewDecoder(b)
	m := &AppendEntriesResponse{}
	m.Term = d.U64()
	m.Success = d.Bool()
	m.MatchIndex = d.U64()
	return m, wrap(d.Err(), "AppendEntriesResponse")
}

func wrap(err error, what string) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("proto: %s: %w", what, err)
}
