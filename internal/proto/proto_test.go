package proto

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dirigent/internal/core"
)

func TestPrewarmTargetsRoundTrip(t *testing.T) {
	m := &PrewarmTargets{
		Gen: 42,
		Targets: []PrewarmTarget{
			{Image: "registry.local/fn-a", Want: 3},
			{Image: "registry.local/fn-b", Want: 1},
		},
	}
	got, err := UnmarshalPrewarmTargets(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip: %+v", got)
	}

	empty, err := UnmarshalPrewarmTargets((&PrewarmTargets{Gen: 7}).Marshal())
	if err != nil || empty.Gen != 7 || len(empty.Targets) != 0 {
		t.Errorf("empty push: %v %+v", err, empty)
	}
}

func TestInvokeRequestRoundTrip(t *testing.T) {
	m := &InvokeRequest{Function: "fn", Async: true, Payload: []byte{1, 2, 3}}
	got, err := UnmarshalInvokeRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Function != m.Function || got.Async != m.Async || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestInvokeResponseRoundTrip(t *testing.T) {
	m := &InvokeResponse{ColdStart: true, SchedulingLatencyUs: 12345, Body: []byte("out")}
	got, err := UnmarshalInvokeResponse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ColdStart != m.ColdStart || got.SchedulingLatencyUs != m.SchedulingLatencyUs || !bytes.Equal(got.Body, m.Body) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestCreateSandboxRequestRoundTrip(t *testing.T) {
	m := &CreateSandboxRequest{
		SandboxID: 99,
		Function: core.Function{
			Name: "f", Image: "img", Port: 80, Runtime: "containerd",
			Scaling: core.DefaultScalingConfig(),
		},
	}
	got, err := UnmarshalCreateSandboxRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SandboxID != 99 || got.Function != m.Function {
		t.Errorf("round trip: %+v", got)
	}
}

func TestSandboxListRoundTrip(t *testing.T) {
	m := &SandboxList{Sandboxes: []SandboxInfo{
		{ID: 1, Function: "a", Node: 2, Addr: "10.0.0.1:9000", State: core.SandboxReady},
		{ID: 2, Function: "b", Node: 3, Addr: "10.0.0.2:9000", State: core.SandboxCreating},
	}}
	got, err := UnmarshalSandboxList(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sandboxes) != 2 || got.Sandboxes[0] != m.Sandboxes[0] || got.Sandboxes[1] != m.Sandboxes[1] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestEmptySandboxList(t *testing.T) {
	m := &SandboxList{}
	got, err := UnmarshalSandboxList(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sandboxes) != 0 {
		t.Errorf("round trip: %+v", got)
	}
}

func TestEndpointUpdateRoundTrip(t *testing.T) {
	m := &EndpointUpdate{
		Function: "f",
		Version:  1<<32 | 7,
		Endpoints: []SandboxInfo{
			{ID: 5, Function: "f", Node: 1, Addr: "w:9000", State: core.SandboxReady},
		},
	}
	got, err := UnmarshalEndpointUpdate(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Function != "f" || got.Version != m.Version || len(got.Endpoints) != 1 || got.Endpoints[0] != m.Endpoints[0] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestScalingMetricReportRoundTrip(t *testing.T) {
	at := time.Unix(1234, 567_000_000)
	m := &ScalingMetricReport{
		DataPlane: 7,
		Metrics: []core.ScalingMetric{
			{Function: "f1", InFlight: 3, QueueDepth: 2, At: at},
			{Function: "f2", InFlight: 0, QueueDepth: 0, At: at.Add(time.Second)},
		},
	}
	got, err := UnmarshalScalingMetricReport(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.DataPlane != 7 || len(got.Metrics) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.Metrics {
		a, b := m.Metrics[i], got.Metrics[i]
		if a.Function != b.Function || a.InFlight != b.InFlight ||
			a.QueueDepth != b.QueueDepth || !a.At.Equal(b.At) {
			t.Errorf("metric %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestWorkerHeartbeatRoundTrip(t *testing.T) {
	m := &WorkerHeartbeat{
		Node: 4,
		Util: core.NodeUtilization{
			Node: 4, CPUMilliUsed: 500, MemoryMBUsed: 1024, SandboxCount: 3, CreationQueue: 1,
			CacheDigest: []uint64{7, 99, 12345678901234567},
		},
	}
	got, err := UnmarshalWorkerHeartbeat(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != m.Node || !reflect.DeepEqual(got.Util, m.Util) {
		t.Errorf("round trip: %+v", got)
	}

	// A heartbeat with no cached images round-trips to a nil digest.
	bare := &WorkerHeartbeat{Node: 5, Util: core.NodeUtilization{Node: 5}}
	got, err = UnmarshalWorkerHeartbeat(bare.Marshal())
	if err != nil || got.Util.CacheDigest != nil {
		t.Errorf("bare heartbeat: %v %+v", err, got)
	}
}

func TestRegisterWorkerRoundTrip(t *testing.T) {
	m := &RegisterWorkerRequest{Worker: core.WorkerNode{ID: 1, Name: "w", IP: "10.0.0.1", Port: 9000, CPUMilli: 10000, MemoryMB: 65536}}
	got, err := UnmarshalRegisterWorkerRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != m.Worker {
		t.Errorf("round trip: %+v", got)
	}
}

func TestRegisterDataPlaneRoundTrip(t *testing.T) {
	m := &RegisterDataPlaneRequest{DataPlane: core.DataPlane{ID: 2, IP: "dp0", Port: 8000}}
	got, err := UnmarshalRegisterDataPlaneRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.DataPlane != m.DataPlane {
		t.Errorf("round trip: %+v", got)
	}
}

func TestSandboxEventRoundTrip(t *testing.T) {
	m := &SandboxEvent{SandboxID: 8, Function: "f", Node: 2, Addr: "w:9000"}
	got, err := UnmarshalSandboxEvent(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFunctionListRoundTrip(t *testing.T) {
	m := &FunctionList{Functions: []core.Function{
		{Name: "a", Image: "img-a", Port: 1, Scaling: core.DefaultScalingConfig()},
		{Name: "b", Image: "img-b", Port: 2, Runtime: "firecracker", Scaling: core.DefaultScalingConfig()},
	}}
	got, err := UnmarshalFunctionList(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Functions) != 2 || got.Functions[0] != m.Functions[0] || got.Functions[1] != m.Functions[1] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestVoteAndPingRoundTrip(t *testing.T) {
	vr := &VoteRequest{Term: 9, Candidate: "cp1"}
	gotVR, err := UnmarshalVoteRequest(vr.Marshal())
	if err != nil || *gotVR != *vr {
		t.Errorf("vote request: %+v, %v", gotVR, err)
	}
	resp := &VoteResponse{Term: 9, Granted: true}
	gotResp, err := UnmarshalVoteResponse(resp.Marshal())
	if err != nil || *gotResp != *resp {
		t.Errorf("vote response: %+v, %v", gotResp, err)
	}
	ping := &LeaderPing{Term: 10, Leader: "cp2"}
	gotPing, err := UnmarshalLeaderPing(ping.Marshal())
	if err != nil || *gotPing != *ping {
		t.Errorf("leader ping: %+v, %v", gotPing, err)
	}
}

func TestInvokeSandboxRoundTrip(t *testing.T) {
	m := &InvokeSandboxRequest{SandboxID: 11, Function: "f", Payload: []byte("p")}
	got, err := UnmarshalInvokeSandboxRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SandboxID != m.SandboxID || got.Function != m.Function || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestTruncatedMessagesError(t *testing.T) {
	full := (&SandboxList{Sandboxes: []SandboxInfo{{ID: 1, Function: "f", Addr: "a"}}}).Marshal()
	for cut := 1; cut < len(full); cut++ {
		if _, err := UnmarshalSandboxList(full[:cut]); err == nil {
			// Some prefixes decode as shorter valid lists (count prefix
			// zero), which is acceptable; a cut inside a record must err.
			if cut > 4 {
				t.Errorf("truncation at %d/%d not detected", cut, len(full))
			}
		}
	}
}

// TestQuickInvokeRequestRoundTrip property-tests invocation framing.
func TestQuickInvokeRequestRoundTrip(t *testing.T) {
	f := func(fn string, async bool, payload []byte) bool {
		if len(fn) > 60000 {
			return true
		}
		m := &InvokeRequest{Function: fn, Async: async, Payload: payload}
		got, err := UnmarshalInvokeRequest(m.Marshal())
		if err != nil {
			return false
		}
		return got.Function == fn && got.Async == async && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCreateSandboxBatchRoundTrip(t *testing.T) {
	m := &CreateSandboxBatch{}
	for i := 0; i < 3; i++ {
		m.Creates = append(m.Creates, CreateSandboxRequest{
			SandboxID: core.SandboxID(100 + i),
			Function: core.Function{
				Name: "f", Image: "img", Port: 80, Runtime: "containerd",
				Scaling: core.DefaultScalingConfig(),
			},
		})
	}
	got, err := UnmarshalCreateSandboxBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Creates) != 3 {
		t.Fatalf("round trip kept %d creates, want 3", len(got.Creates))
	}
	for i := range m.Creates {
		if got.Creates[i].SandboxID != m.Creates[i].SandboxID || got.Creates[i].Function != m.Creates[i].Function {
			t.Errorf("create %d: %+v", i, got.Creates[i])
		}
	}
	empty, err := UnmarshalCreateSandboxBatch((&CreateSandboxBatch{}).Marshal())
	if err != nil || len(empty.Creates) != 0 {
		t.Errorf("empty batch: %v %+v", err, empty)
	}
}

func TestSandboxEventBatchRoundTrip(t *testing.T) {
	m := &SandboxEventBatch{Events: []SandboxEvent{
		{SandboxID: 1, Function: "a", Node: 2, Addr: "10.0.0.1:9000"},
		{SandboxID: 2, Function: "b", Node: 3, Addr: "10.0.0.2:9000"},
	}}
	got, err := UnmarshalSandboxEventBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 || got.Events[0] != m.Events[0] || got.Events[1] != m.Events[1] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestEndpointUpdateBatchRoundTrip(t *testing.T) {
	m := &EndpointUpdateBatch{Updates: []EndpointUpdate{
		{Function: "a", Version: 7, Endpoints: []SandboxInfo{
			{ID: 1, Function: "a", Node: 2, Addr: "10.0.0.1:9000", State: core.SandboxReady},
		}},
		{Function: "b", Version: 9}, // empty endpoint set (drain)
	}}
	got, err := UnmarshalEndpointUpdateBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Updates) != 2 {
		t.Fatalf("round trip kept %d updates, want 2", len(got.Updates))
	}
	if got.Updates[0].Function != "a" || got.Updates[0].Version != 7 ||
		len(got.Updates[0].Endpoints) != 1 || got.Updates[0].Endpoints[0] != m.Updates[0].Endpoints[0] {
		t.Errorf("update 0: %+v", got.Updates[0])
	}
	if got.Updates[1].Function != "b" || got.Updates[1].Version != 9 || len(got.Updates[1].Endpoints) != 0 {
		t.Errorf("update 1: %+v", got.Updates[1])
	}
}

func TestTruncatedBatchMessagesError(t *testing.T) {
	full := (&CreateSandboxBatch{Creates: []CreateSandboxRequest{{
		SandboxID: 1,
		Function:  core.Function{Name: "f", Image: "i", Port: 1, Scaling: core.DefaultScalingConfig()},
	}}}).Marshal()
	if _, err := UnmarshalCreateSandboxBatch(full[:len(full)-3]); err == nil {
		t.Errorf("truncated CreateSandboxBatch accepted")
	}
	evb := (&SandboxEventBatch{Events: []SandboxEvent{{SandboxID: 1, Function: "f", Node: 1, Addr: "a:1"}}}).Marshal()
	if _, err := UnmarshalSandboxEventBatch(evb[:len(evb)-2]); err == nil {
		t.Errorf("truncated SandboxEventBatch accepted")
	}
}

func TestDataPlaneHeartbeatRoundTrip(t *testing.T) {
	m := &DataPlaneHeartbeat{DataPlane: core.DataPlane{ID: 3, IP: "10.0.0.9", Port: 8000}}
	got, err := UnmarshalDataPlaneHeartbeat(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.DataPlane != m.DataPlane {
		t.Errorf("round trip: %+v", got.DataPlane)
	}
}

func TestDataPlaneListRoundTrip(t *testing.T) {
	m := &DataPlaneList{DataPlanes: []core.DataPlane{
		{ID: 1, IP: "10.0.0.1", Port: 8000},
		{ID: 2, IP: "10.0.0.2", Port: 8001},
	}}
	got, err := UnmarshalDataPlaneList(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DataPlanes) != 2 || got.DataPlanes[0] != m.DataPlanes[0] || got.DataPlanes[1] != m.DataPlanes[1] {
		t.Errorf("round trip: %+v", got.DataPlanes)
	}
	empty, err := UnmarshalDataPlaneList((&DataPlaneList{}).Marshal())
	if err != nil || len(empty.DataPlanes) != 0 {
		t.Errorf("empty list round trip: %+v, %v", empty, err)
	}
	if _, err := UnmarshalDataPlaneList(m.Marshal()[:3]); err == nil {
		t.Errorf("truncated DataPlaneList accepted")
	}
}

func TestKillSandboxBatchRoundTrip(t *testing.T) {
	m := &KillSandboxBatch{IDs: []core.SandboxID{7, 9, 4096}}
	got, err := UnmarshalKillSandboxBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 3 || got.IDs[0] != 7 || got.IDs[1] != 9 || got.IDs[2] != 4096 {
		t.Errorf("round trip: %+v", got.IDs)
	}
	if _, err := UnmarshalKillSandboxBatch(m.Marshal()[:6]); err == nil {
		t.Errorf("truncated KillSandboxBatch accepted")
	}
}

func TestWorkerHeartbeatBatchRoundTrip(t *testing.T) {
	m := &WorkerHeartbeatBatch{
		Relay:   "relay-3",
		Missing: []core.NodeID{9, 12},
	}
	for i := 0; i < 3; i++ {
		id := core.NodeID(40 + i)
		m.Beats = append(m.Beats, WorkerHeartbeat{
			Node: id,
			Util: core.NodeUtilization{
				Node: id, CPUMilliUsed: 100 * i, MemoryMBUsed: 256 * i, SandboxCount: i,
				CacheDigest: []uint64{uint64(i), uint64(1000 + i)},
			},
		})
	}
	got, err := UnmarshalWorkerHeartbeatBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Relay != m.Relay {
		t.Errorf("relay: %q", got.Relay)
	}
	if len(got.Missing) != 2 || got.Missing[0] != 9 || got.Missing[1] != 12 {
		t.Errorf("missing: %v", got.Missing)
	}
	if len(got.Beats) != 3 {
		t.Fatalf("round trip kept %d beats, want 3", len(got.Beats))
	}
	for i := range m.Beats {
		if got.Beats[i].Node != m.Beats[i].Node || !reflect.DeepEqual(got.Beats[i].Util, m.Beats[i].Util) {
			t.Errorf("beat %d: %+v", i, got.Beats[i])
		}
	}
	empty, err := UnmarshalWorkerHeartbeatBatch((&WorkerHeartbeatBatch{Relay: "r"}).Marshal())
	if err != nil || len(empty.Beats) != 0 || len(empty.Missing) != 0 {
		t.Errorf("empty batch: %v %+v", err, empty)
	}
}

func TestRegisterWorkerBatchRoundTrip(t *testing.T) {
	m := &RegisterWorkerBatch{Relay: "relay-1"}
	for i := 0; i < 3; i++ {
		m.Workers = append(m.Workers, core.WorkerNode{
			ID: core.NodeID(i + 1), Name: fmt.Sprintf("w%d", i+1),
			IP: "10.0.0.1", Port: 9000, CPUMilli: 8000, MemoryMB: 32768,
		})
	}
	got, err := UnmarshalRegisterWorkerBatch(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Relay != m.Relay || len(got.Workers) != 3 {
		t.Fatalf("round trip: relay=%q workers=%d", got.Relay, len(got.Workers))
	}
	for i := range m.Workers {
		if got.Workers[i] != m.Workers[i] {
			t.Errorf("worker %d: %+v", i, got.Workers[i])
		}
	}
}

func TestTruncatedRelayBatchMessagesError(t *testing.T) {
	hb := (&WorkerHeartbeatBatch{Relay: "r", Beats: []WorkerHeartbeat{{Node: 1}}}).Marshal()
	if _, err := UnmarshalWorkerHeartbeatBatch(hb[:len(hb)-3]); err == nil {
		t.Errorf("truncated WorkerHeartbeatBatch accepted")
	}
	reg := (&RegisterWorkerBatch{Relay: "r", Workers: []core.WorkerNode{{ID: 1, Name: "w"}}}).Marshal()
	if _, err := UnmarshalRegisterWorkerBatch(reg[:len(reg)-2]); err == nil {
		t.Errorf("truncated RegisterWorkerBatch accepted")
	}
}

func TestRegisterDataPlaneRequestRoundTrip(t *testing.T) {
	m := &RegisterDataPlaneRequest{
		DataPlane:   core.DataPlane{ID: 3, IP: "10.88.0.3", Port: 8000},
		Durable:     true,
		AsyncHashes: []string{"async-queue-0", "async-queue-1"},
	}
	got, err := UnmarshalRegisterDataPlaneRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip: %+v", got)
	}
	// Non-durable replicas advertise no hashes.
	plain, err := UnmarshalRegisterDataPlaneRequest((&RegisterDataPlaneRequest{
		DataPlane: core.DataPlane{ID: 1},
	}).Marshal())
	if err != nil || plain.Durable || len(plain.AsyncHashes) != 0 {
		t.Errorf("plain register: %v %+v", err, plain)
	}
}

func TestDataPlaneEpochAckRoundTrip(t *testing.T) {
	got, err := UnmarshalDataPlaneEpochAck((&DataPlaneEpochAck{Epoch: 42}).Marshal())
	if err != nil || got.Epoch != 42 {
		t.Fatalf("round trip: %v %+v", err, got)
	}
	// Empty reply (pre-epoch control plane) decodes as "no epoch".
	empty, err := UnmarshalDataPlaneEpochAck(nil)
	if err != nil || empty.Epoch != 0 {
		t.Fatalf("empty ack: %v %+v", err, empty)
	}
}

func TestAsyncLeaseRoundTrip(t *testing.T) {
	m := &AsyncLease{Owner: 2, Epoch: 9, Hashes: []string{"async-queue", "async-queue-7"}}
	got, err := UnmarshalAsyncLease(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip: %+v", got)
	}
	b := m.Marshal()
	if _, err := UnmarshalAsyncLease(b[:len(b)-3]); err == nil {
		t.Errorf("truncated AsyncLease accepted")
	}

	rv := &AsyncLeaseRevoke{Owner: 2, Epoch: 10}
	gotRv, err := UnmarshalAsyncLeaseRevoke(rv.Marshal())
	if err != nil || *gotRv != *rv {
		t.Fatalf("revoke round trip: %v %+v", err, gotRv)
	}
}
