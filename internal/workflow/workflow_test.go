package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeInvoker runs steps in-process with per-function handlers and records
// concurrency and invocation order.
type fakeInvoker struct {
	mu       sync.Mutex
	handlers map[string]func([]byte) ([]byte, error)
	order    []string
	inflight int
	maxSeen  int
	delay    time.Duration
}

func newFakeInvoker() *fakeInvoker {
	return &fakeInvoker{handlers: map[string]func([]byte) ([]byte, error){}}
}

func (f *fakeInvoker) on(fn string, h func([]byte) ([]byte, error)) { f.handlers[fn] = h }

func (f *fakeInvoker) Invoke(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.order = append(f.order, fn)
	f.inflight++
	if f.inflight > f.maxSeen {
		f.maxSeen = f.inflight
	}
	h := f.handlers[fn]
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	defer func() {
		f.mu.Lock()
		f.inflight--
		f.mu.Unlock()
	}()
	if h == nil {
		return nil, fmt.Errorf("no handler for %s", fn)
	}
	return h(payload)
}

func echo(prefix string) func([]byte) ([]byte, error) {
	return func(p []byte) ([]byte, error) {
		return append([]byte(prefix+"("), append(p, ')')...), nil
	}
}

func TestLinearPipeline(t *testing.T) {
	inv := newFakeInvoker()
	inv.on("a", echo("a"))
	inv.on("b", echo("b"))
	inv.on("c", echo("c"))
	wf := &Workflow{Name: "pipeline", Steps: []Step{
		{Name: "s1", Function: "a"},
		{Name: "s2", Function: "b", After: []string{"s1"}},
		{Name: "s3", Function: "c", After: []string{"s2"}},
	}}
	o := NewOrchestrator(inv)
	res, err := o.Execute(context.Background(), wf, []byte("in"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.Outputs["s3"]); got != "c(b(a(in)))" {
		t.Errorf("s3 output = %q", got)
	}
	if len(res.Skipped) != 0 {
		t.Errorf("skipped = %v", res.Skipped)
	}
}

func TestDiamondJoinsOutputs(t *testing.T) {
	inv := newFakeInvoker()
	inv.on("root", func([]byte) ([]byte, error) { return []byte("R"), nil })
	inv.on("left", func(p []byte) ([]byte, error) { return append(p, 'L'), nil })
	inv.on("right", func(p []byte) ([]byte, error) { return append(p, 'r'), nil })
	inv.on("join", func(p []byte) ([]byte, error) { return p, nil })
	wf := &Workflow{Name: "diamond", Steps: []Step{
		{Name: "root", Function: "root"},
		{Name: "l", Function: "left", After: []string{"root"}},
		{Name: "r", Function: "right", After: []string{"root"}},
		{Name: "join", Function: "join", After: []string{"l", "r"}},
	}}
	res, err := NewOrchestrator(inv).Execute(context.Background(), wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Join payload = concat of dependency outputs in After order.
	if got := string(res.Outputs["join"]); got != "RLRr" {
		t.Errorf("join output = %q, want RLRr", got)
	}
}

func TestIndependentBranchesRunConcurrently(t *testing.T) {
	inv := newFakeInvoker()
	inv.delay = 50 * time.Millisecond
	for _, fn := range []string{"a", "b", "c", "d"} {
		inv.on(fn, echo(fn))
	}
	wf := &Workflow{Name: "fanout", Steps: []Step{
		{Name: "s1", Function: "a"},
		{Name: "s2", Function: "b"},
		{Name: "s3", Function: "c"},
		{Name: "s4", Function: "d"},
	}}
	start := time.Now()
	if _, err := NewOrchestrator(inv).Execute(context.Background(), wf, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("4 independent 50ms steps took %v; not parallel", elapsed)
	}
	if inv.maxSeen < 2 {
		t.Errorf("max concurrency %d; fan-out not concurrent", inv.maxSeen)
	}
}

func TestMaxConcurrencyCaps(t *testing.T) {
	inv := newFakeInvoker()
	inv.delay = 20 * time.Millisecond
	for i := 0; i < 8; i++ {
		inv.on(fmt.Sprintf("f%d", i), echo("x"))
	}
	wf := &Workflow{Name: "fanout"}
	for i := 0; i < 8; i++ {
		wf.Steps = append(wf.Steps, Step{Name: fmt.Sprintf("s%d", i), Function: fmt.Sprintf("f%d", i)})
	}
	o := NewOrchestrator(inv)
	o.MaxConcurrency = 2
	if _, err := o.Execute(context.Background(), wf, nil); err != nil {
		t.Fatal(err)
	}
	if inv.maxSeen > 2 {
		t.Errorf("max concurrency %d, want <= 2", inv.maxSeen)
	}
}

func TestFailurePropagatesAndSkips(t *testing.T) {
	inv := newFakeInvoker()
	inv.on("ok", echo("ok"))
	inv.on("boom", func([]byte) ([]byte, error) { return nil, errors.New("exploded") })
	inv.on("never", echo("never"))
	wf := &Workflow{Name: "failing", Steps: []Step{
		{Name: "a", Function: "ok"},
		{Name: "b", Function: "boom", After: []string{"a"}},
		{Name: "c", Function: "never", After: []string{"b"}},
		{Name: "d", Function: "never", After: []string{"c"}},
	}}
	res, err := NewOrchestrator(inv).Execute(context.Background(), wf, nil)
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v, want ErrStepFailed", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should name the failing function: %v", err)
	}
	if len(res.Skipped) != 2 {
		t.Errorf("skipped = %v, want [c d]", res.Skipped)
	}
	if _, ran := res.Outputs["c"]; ran {
		t.Errorf("dependent of failed step ran")
	}
}

func TestValidateRejectsBadWorkflows(t *testing.T) {
	cases := []struct {
		name string
		wf   Workflow
		want error
	}{
		{"empty", Workflow{}, ErrEmptyWorkflow},
		{"missing fields", Workflow{Steps: []Step{{Name: "", Function: "f"}}}, ErrMissingField},
		{"duplicate", Workflow{Steps: []Step{
			{Name: "a", Function: "f"}, {Name: "a", Function: "g"},
		}}, ErrDuplicateStep},
		{"unknown dep", Workflow{Steps: []Step{
			{Name: "a", Function: "f", After: []string{"ghost"}},
		}}, ErrUnknownDep},
		{"self cycle", Workflow{Steps: []Step{
			{Name: "a", Function: "f", After: []string{"a"}},
		}}, ErrCycle},
		{"long cycle", Workflow{Steps: []Step{
			{Name: "a", Function: "f", After: []string{"c"}},
			{Name: "b", Function: "f", After: []string{"a"}},
			{Name: "c", Function: "f", After: []string{"b"}},
		}}, ErrCycle},
	}
	for _, tc := range cases {
		if err := tc.wf.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	good := Workflow{Steps: []Step{
		{Name: "a", Function: "f"},
		{Name: "b", Function: "g", After: []string{"a"}},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid workflow rejected: %v", err)
	}
}

func TestExecuteInvalidWorkflow(t *testing.T) {
	if _, err := NewOrchestrator(newFakeInvoker()).Execute(context.Background(), &Workflow{}, nil); !errors.Is(err, ErrEmptyWorkflow) {
		t.Errorf("err = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	inv := newFakeInvoker()
	inv.delay = 200 * time.Millisecond
	inv.on("slow", echo("slow"))
	wf := &Workflow{Name: "slow", Steps: []Step{
		{Name: "a", Function: "slow"},
		{Name: "b", Function: "slow", After: []string{"a"}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := NewOrchestrator(inv).Execute(ctx, wf, nil)
	if err == nil {
		t.Fatalf("expected cancellation error")
	}
}
