package workflow_test

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dirigent/internal/cluster"
	"dirigent/internal/core"
	"dirigent/internal/workflow"
)

// These tests run the orchestrator against a real in-process cluster —
// replicated control plane, data planes, workers, front-end LB — rather
// than the fake invoker in workflow_test.go, so every step goes through
// the data plane's queueing, load balancing, and cold-start machinery.

func liveCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		ControlPlanes:     3,
		DataPlanes:        2,
		Workers:           3,
		AutoscaleInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		MetricInterval:    10 * time.Millisecond,
		NoDownscaleWindow: 100 * time.Millisecond,
		QueueTimeout:      5 * time.Second,
	})
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

// registerStep registers a function whose handler transforms the payload,
// so step outputs record which functions ran and in what order.
func registerStep(t *testing.T, c *cluster.Cluster, name string, handler func([]byte) ([]byte, error)) {
	t.Helper()
	fn := core.Function{
		Name:    name,
		Image:   "registry.local/" + name + ":latest",
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	fn.Scaling.StableWindow = 2 * time.Second
	fn.Scaling.PanicWindow = 200 * time.Millisecond
	fn.Scaling.ScaleToZeroGrace = time.Second
	if err := c.RegisterFunction(fn); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	c.Images.Register(fn.Image, handler)
}

func tagStep(suffix string) func([]byte) ([]byte, error) {
	return func(payload []byte) ([]byte, error) {
		return append(append([]byte{}, payload...), []byte(suffix)...), nil
	}
}

// lbInvoker satisfies workflow.Invoker over the cluster's front-end LB,
// the adapter a deployment's orchestrator-in-the-data-plane would use.
type lbInvoker struct{ c *cluster.Cluster }

func (i lbInvoker) Invoke(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	resp, err := i.c.Invoke(ctx, fn, payload)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// TestWorkflowChainLive runs a three-step chain where every step cold
// starts through the real data plane, checking outputs thread through in
// dependency order.
func TestWorkflowChainLive(t *testing.T) {
	c := liveCluster(t)
	registerStep(t, c, "wf-a", tagStep("|a"))
	registerStep(t, c, "wf-b", tagStep("|b"))
	registerStep(t, c, "wf-c", tagStep("|c"))

	wf := &workflow.Workflow{Name: "chain", Steps: []workflow.Step{
		{Name: "a", Function: "wf-a"},
		{Name: "b", Function: "wf-b", After: []string{"a"}},
		{Name: "c", Function: "wf-c", After: []string{"b"}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := workflow.NewOrchestrator(lbInvoker{c}).Execute(ctx, wf, []byte("in"))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got := string(res.Outputs["c"]); got != "in|a|b|c" {
		t.Fatalf("chain output = %q, want %q", got, "in|a|b|c")
	}
}

// TestWorkflowFanOutFanInLive runs a diamond: one root fans out to three
// concurrent branches whose outputs a join step receives concatenated in
// After order.
func TestWorkflowFanOutFanInLive(t *testing.T) {
	c := liveCluster(t)
	registerStep(t, c, "wf-root", func([]byte) ([]byte, error) { return []byte("R|"), nil })
	registerStep(t, c, "wf-l", tagStep("L;"))
	registerStep(t, c, "wf-m", tagStep("M;"))
	registerStep(t, c, "wf-r", tagStep("R;"))
	registerStep(t, c, "wf-join", func(payload []byte) ([]byte, error) {
		return append(append([]byte{}, payload...), []byte("join")...), nil
	})

	wf := &workflow.Workflow{Name: "diamond", Steps: []workflow.Step{
		{Name: "root", Function: "wf-root"},
		{Name: "l", Function: "wf-l", After: []string{"root"}},
		{Name: "m", Function: "wf-m", After: []string{"root"}},
		{Name: "r", Function: "wf-r", After: []string{"root"}},
		{Name: "join", Function: "wf-join", After: []string{"l", "m", "r"}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := workflow.NewOrchestrator(lbInvoker{c}).Execute(ctx, wf, nil)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	want := "R|L;R|M;R|R;join"
	if got := string(res.Outputs["join"]); got != want {
		t.Fatalf("join output = %q, want %q", got, want)
	}
}

// TestWorkflowBranchSurvivesEndpointDrain kills the only worker hosting
// one branch's sandbox while the workflow is executing, before that branch
// is dispatched: a gate step holds the branch back so its invoke is
// guaranteed to hit the dead endpoint. The data plane must absorb the
// drain — retry the stale endpoint, queue the invocation as a cold start,
// and re-dispatch once the control plane detects the crash and re-places
// the function — so the workflow completes without the orchestrator ever
// seeing an error.
func TestWorkflowBranchSurvivesEndpointDrain(t *testing.T) {
	c := liveCluster(t)

	registerStep(t, c, "wf-gate", func(payload []byte) ([]byte, error) {
		time.Sleep(250 * time.Millisecond)
		return append(append([]byte{}, payload...), []byte("gate;")...), nil
	})
	registerStep(t, c, "wf-other", func([]byte) ([]byte, error) { return []byte("other;"), nil })
	registerStep(t, c, "wf-tail", tagStep("tail"))

	// Pin one warm wf-slow sandbox and record which worker hosts it while
	// it is the only sandbox in the cluster (the other steps scale from
	// zero and have not been invoked yet), so the kill below is guaranteed
	// to drain the branch's only endpoint.
	var slowRuns atomic.Int32
	slow := core.Function{
		Name:    "wf-slow",
		Image:   "registry.local/wf-slow:latest",
		Port:    8080,
		Runtime: "containerd",
		Scaling: core.DefaultScalingConfig(),
	}
	slow.Scaling.MinScale = 1
	slow.Scaling.StableWindow = time.Hour // no churn mid-test
	if err := c.RegisterFunction(slow); err != nil {
		t.Fatalf("register wf-slow: %v", err)
	}
	c.Images.Register(slow.Image, func(payload []byte) ([]byte, error) {
		slowRuns.Add(1)
		return append(append([]byte{}, payload...), []byte("slow;")...), nil
	})
	if err := c.AwaitScale("wf-slow", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	host := -1
	for i, w := range c.Workers {
		if w.SandboxCount() > 0 {
			host = i
			break
		}
	}
	if host < 0 {
		t.Fatal("no worker hosts the wf-slow sandbox")
	}

	wf := &workflow.Workflow{Name: "drain", Steps: []workflow.Step{
		{Name: "gate", Function: "wf-gate"},
		{Name: "slow", Function: "wf-slow", After: []string{"gate"}},
		{Name: "other", Function: "wf-other"},
		{Name: "tail", Function: "wf-tail", After: []string{"slow", "other"}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	done := make(chan struct{})
	var res *workflow.Result
	var execErr error
	go func() {
		defer close(done)
		res, execErr = workflow.NewOrchestrator(lbInvoker{c}).Execute(ctx, wf, []byte("in;"))
	}()

	// While the gate step holds the slow branch back, drain its only
	// endpoint: the branch's invoke will target a dead worker.
	time.Sleep(100 * time.Millisecond)
	c.KillWorker(host)

	select {
	case <-done:
	case <-time.After(25 * time.Second):
		t.Fatal("workflow did not finish after endpoint drain")
	}
	if execErr != nil {
		t.Fatalf("workflow failed despite re-placement: %v", execErr)
	}
	if errors.Is(execErr, workflow.ErrStepFailed) {
		t.Fatalf("step failed: %v", execErr)
	}
	want := "in;gate;slow;other;tail"
	if got := string(res.Outputs["tail"]); got != want {
		t.Fatalf("tail output = %q, want %q", got, want)
	}
	if !bytes.HasSuffix(res.Outputs["slow"], []byte("slow;")) {
		t.Fatalf("slow output = %q", res.Outputs["slow"])
	}
	if slowRuns.Load() < 1 {
		t.Fatalf("slow branch never ran")
	}
	// The branch really did lose its endpoint mid-workflow: the control
	// plane's health sweep must have counted the crashed worker.
	if got := c.Metrics.Counter("worker_failures_detected").Value(); got < 1 {
		t.Fatalf("worker_failures_detected = %d, want >= 1", got)
	}
}
