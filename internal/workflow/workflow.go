// Package workflow implements function-workflow orchestration on top of
// the data plane, the extension the paper names as the direction it is
// actively exploring (§6: "how Dirigent's design generalizes to scheduling
// function workflows by extending Dirigent data plane components to serve
// as workflow orchestrators").
//
// A Workflow is a DAG of steps, each invoking one registered function.
// The orchestrator runs steps as soon as all of their dependencies have
// completed, fanning out independent branches concurrently, and feeds each
// step the concatenated outputs of its dependencies (or the workflow input
// for root steps). Failures propagate: dependent steps are skipped and the
// execution returns the first error.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Invoker abstracts the invocation fabric; *cluster.Cluster satisfies it
// via an adapter, as does any client of the data plane API.
type Invoker interface {
	// Invoke synchronously executes function with payload.
	Invoke(ctx context.Context, function string, payload []byte) ([]byte, error)
}

// Step is one node of the workflow DAG.
type Step struct {
	// Name identifies the step within the workflow.
	Name string
	// Function is the registered function the step invokes.
	Function string
	// After lists the names of steps that must complete first. Empty
	// means the step is a root and receives the workflow input.
	After []string
}

// Workflow is a named DAG of steps.
type Workflow struct {
	Name  string
	Steps []Step
}

// Validation errors.
var (
	ErrEmptyWorkflow = errors.New("workflow: no steps")
	ErrDuplicateStep = errors.New("workflow: duplicate step name")
	ErrUnknownDep    = errors.New("workflow: dependency on unknown step")
	ErrCycle         = errors.New("workflow: dependency cycle")
	ErrStepFailed    = errors.New("workflow: step failed")
	ErrMissingField  = errors.New("workflow: step missing name or function")
)

// Validate checks the workflow is a well-formed DAG.
func (w *Workflow) Validate() error {
	if len(w.Steps) == 0 {
		return ErrEmptyWorkflow
	}
	byName := make(map[string]*Step, len(w.Steps))
	for i := range w.Steps {
		s := &w.Steps[i]
		if s.Name == "" || s.Function == "" {
			return fmt.Errorf("%w: %+v", ErrMissingField, s)
		}
		if _, dup := byName[s.Name]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateStep, s.Name)
		}
		byName[s.Name] = s
	}
	for i := range w.Steps {
		for _, dep := range w.Steps[i].After {
			if _, ok := byName[dep]; !ok {
				return fmt.Errorf("%w: %q -> %q", ErrUnknownDep, w.Steps[i].Name, dep)
			}
		}
	}
	// Cycle detection via iterative DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(w.Steps))
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("%w: through %q", ErrCycle, name)
		case black:
			return nil
		}
		color[name] = gray
		for _, dep := range byName[name].After {
			if err := visit(dep); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for i := range w.Steps {
		if err := visit(w.Steps[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// Result holds the outcome of one workflow execution.
type Result struct {
	// Outputs maps step name to its function's response body.
	Outputs map[string][]byte
	// Skipped lists steps not run because a dependency failed.
	Skipped []string
}

// Orchestrator executes workflows over an Invoker. It is stateless and
// safe for concurrent use; in a deployment it lives in the data plane,
// reusing its queues, throttling, and load balancing per step.
type Orchestrator struct {
	invoker Invoker
	// MaxConcurrency caps simultaneously running steps (0 = unlimited).
	MaxConcurrency int
}

// NewOrchestrator returns an orchestrator over the given invoker.
func NewOrchestrator(inv Invoker) *Orchestrator {
	return &Orchestrator{invoker: inv}
}

// Execute runs the workflow with the given input and returns every step's
// output. On step failure, execution cancels outstanding work, skips
// dependents, and returns an error wrapping ErrStepFailed.
func (o *Orchestrator) Execute(ctx context.Context, wf *Workflow, input []byte) (*Result, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type stepState struct {
		step       *Step
		remaining  int
		dependents []string
	}
	states := make(map[string]*stepState, len(wf.Steps))
	for i := range wf.Steps {
		s := &wf.Steps[i]
		states[s.Name] = &stepState{step: s, remaining: len(s.After)}
	}
	for i := range wf.Steps {
		s := &wf.Steps[i]
		for _, dep := range s.After {
			states[dep].dependents = append(states[dep].dependents, s.Name)
		}
	}

	var (
		mu       sync.Mutex
		outputs  = make(map[string][]byte, len(wf.Steps))
		skipped  []string
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, maxInt(o.MaxConcurrency, len(wf.Steps)))

	var launch func(name string)
	markSkipped := func(name string) {
		// Recursively mark dependents skipped (holding mu).
		var rec func(n string)
		seen := map[string]bool{}
		rec = func(n string) {
			if seen[n] {
				return
			}
			seen[n] = true
			skipped = append(skipped, n)
			for _, d := range states[n].dependents {
				rec(d)
			}
		}
		rec(name)
	}

	launch = func(name string) {
		st := states[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			// Assemble the step payload: workflow input for roots, else
			// the concatenation of dependency outputs in After order.
			mu.Lock()
			if firstErr != nil {
				mu.Unlock()
				return
			}
			var payload []byte
			if len(st.step.After) == 0 {
				payload = input
			} else {
				for _, dep := range st.step.After {
					payload = append(payload, outputs[dep]...)
				}
			}
			mu.Unlock()

			out, err := o.invoker.Invoke(ctx, st.step.Function, payload)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: step %q (%s): %v", ErrStepFailed, st.step.Name, st.step.Function, err)
					markSkipped(st.step.Name)
					// Remove self from skipped (it ran and failed).
					skipped = skipped[1:]
					cancel()
				}
				return
			}
			outputs[st.step.Name] = out
			for _, depName := range st.dependents {
				d := states[depName]
				d.remaining--
				if d.remaining == 0 && firstErr == nil {
					launch(depName)
				}
			}
		}()
	}

	// Snapshot the roots before launching anything: once the first
	// goroutine runs, it may decrement dependents' remaining counts (and
	// launch them itself), so reading remaining here would race and could
	// double-launch a step.
	var roots []string
	for i := range wf.Steps {
		if states[wf.Steps[i].Name].remaining == 0 {
			roots = append(roots, wf.Steps[i].Name)
		}
	}
	for _, name := range roots {
		launch(name)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return &Result{Outputs: outputs, Skipped: skipped}, firstErr
	}
	return &Result{Outputs: outputs}, nil
}

func maxInt(a, b int) int {
	if a <= 0 || a > b {
		return b
	}
	return a
}
