// Package clock abstracts time so that the same scheduling and policy code
// can run against the wall clock in a live cluster and against a virtual
// clock in tests and discrete-event simulations.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and timer primitives. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// NewReal returns a Clock backed by the system wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a manually advanced Clock for deterministic tests. Goroutines
// blocked in Sleep or on After channels are released when Advance moves the
// clock past their deadlines.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewVirtual returns a Virtual clock initialized to start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

type waiter struct {
	at  time.Time
	seq int64
	ch  chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock. It blocks until the clock is advanced past the
// deadline.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{at: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for len(v.waiters) > 0 && !v.waiters[0].at.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.at
		w.ch <- v.now
	}
	v.now = target
	v.mu.Unlock()
}

// PendingTimers reports how many timers are waiting to fire.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
