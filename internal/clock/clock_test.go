package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockMonotonic(t *testing.T) {
	c := NewReal()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Errorf("real clock went backwards")
	}
	if c.Since(a) < 0 {
		t.Errorf("Since returned negative duration")
	}
}

func TestVirtualNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Errorf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(5 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Errorf("Now after Advance = %v", got)
	}
	if v.Since(start) != 5*time.Second {
		t.Errorf("Since = %v", v.Since(start))
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch1 := v.After(time.Second)
	ch2 := v.After(2 * time.Second)
	ch3 := v.After(3 * time.Second)

	v.Advance(2500 * time.Millisecond)
	t1 := <-ch1
	t2 := <-ch2
	if !t1.Equal(time.Unix(1, 0)) {
		t.Errorf("timer 1 fired at %v", t1)
	}
	if !t2.Equal(time.Unix(2, 0)) {
		t.Errorf("timer 2 fired at %v", t2)
	}
	select {
	case <-ch3:
		t.Errorf("timer 3 fired early")
	default:
	}
	if v.PendingTimers() != 1 {
		t.Errorf("PendingTimers = %d, want 1", v.PendingTimers())
	}
	v.Advance(time.Second)
	<-ch3
}

func TestVirtualZeroDelayFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	case <-time.After(time.Second):
		t.Fatalf("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	case <-time.After(time.Second):
		t.Fatalf("After(negative) did not fire immediately")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(time.Minute)
		close(woke)
	}()
	// Wait until the sleeper has registered its timer.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Minute)
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatalf("Sleep did not wake on Advance")
	}
	wg.Wait()
}

func TestVirtualManyConcurrentSleepers(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 50
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i) * time.Millisecond)
		}(i)
	}
	for v.PendingTimers() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Duration(n) * time.Millisecond)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("not all sleepers woke; %d timers still pending", v.PendingTimers())
	}
}
