package dataplane

import (
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/proto"
)

// defaultInvokeShards is the number of stripes in the data plane's
// function registry, matching the control plane's state-manager default:
// small enough to sweep cheaply, large enough that a handful of hot
// functions rarely collide on registry mutations.
const defaultInvokeShards = 32

// invokeShard is one stripe of the function registry. Lookups on the
// invoke hot path go through the copy-on-write map published in fns and
// never lock; mutations (function registration, deregistration) take
// sh.mu, copy the map, and atomically publish the successor.
type invokeShard struct {
	mu  sync.Mutex
	fns atomicFnMap
}

// atomicFnMap is an atomically published immutable function map.
type atomicFnMap struct {
	p atomic.Pointer[map[string]*functionRuntime]
}

func (m *atomicFnMap) load() map[string]*functionRuntime { return *m.p.Load() }
func (m *atomicFnMap) store(next map[string]*functionRuntime) {
	m.p.Store(&next)
}

func newInvokeShards(n int) []*invokeShard {
	shards := make([]*invokeShard, n)
	for i := range shards {
		sh := &invokeShard{}
		sh.fns.store(make(map[string]*functionRuntime))
		shards[i] = sh
	}
	return shards
}

// shardFor maps a function name to its registry stripe (FNV-1a folded to
// 16 bits by core.FunctionHash, same striping as the control plane).
func (dp *DataPlane) shardFor(name string) *invokeShard {
	return dp.shards[uint32(core.FunctionHash(name))%uint32(len(dp.shards))]
}

// lookup resolves a function runtime lock-free; nil means unknown.
func (dp *DataPlane) lookup(name string) *functionRuntime {
	return dp.shardFor(name).fns.load()[name]
}

// getOrCreate resolves a function runtime, creating a shell entry when
// the name is unknown (e.g. an endpoint broadcast racing the function
// push). The double-checked fast path keeps steady-state resolution
// lock-free.
func (dp *DataPlane) getOrCreate(name string) *functionRuntime {
	sh := dp.shardFor(name)
	if fr := sh.fns.load()[name]; fr != nil {
		return fr
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.fns.load()
	if fr := cur[name]; fr != nil {
		return fr
	}
	fr := dp.newRuntime(name)
	next := make(map[string]*functionRuntime, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = fr
	sh.fns.store(next)
	return fr
}

// lockLive locks fr against concurrent deregistration: a runtime that
// went dead between the lock-free lookup and the lock acquisition is
// re-resolved, so callers always mutate the registry's live entry.
// Returns nil when the data plane is shutting down mid-retry.
func (dp *DataPlane) lockLive(name string) *functionRuntime {
	for {
		fr := dp.getOrCreate(name)
		dp.lockRuntime(fr)
		if !fr.dead {
			return fr
		}
		fr.mu.Unlock()
		if dp.stopped.Load() {
			return nil
		}
	}
}

// removeFunction unpublishes a runtime from the registry and fails its
// queued invocations. Safe to call for unknown names.
func (dp *DataPlane) removeFunction(name string) {
	sh := dp.shardFor(name)
	sh.mu.Lock()
	cur := sh.fns.load()
	fr, ok := cur[name]
	if !ok {
		sh.mu.Unlock()
		return
	}
	next := make(map[string]*functionRuntime, len(cur)-1)
	for k, v := range cur {
		if k != name {
			next[k] = v
		}
	}
	sh.fns.store(next)
	sh.mu.Unlock()

	dp.lockRuntime(fr)
	fr.dead = true
	queue := fr.queue
	fr.queue = nil
	fr.queued.Store(0)
	// Stragglers holding the stale runtime pointer must stop routing to
	// its endpoints: clear the snapshot so their warm picks miss and
	// their cold-path enqueue sees dead.
	fr.endpoints = make(map[core.SandboxID]*endpointState)
	fr.snap.Store(emptySnapshot)
	fr.mu.Unlock()
	for _, p := range queue {
		p.resultCh <- invokeResult{err: deregisteredErr(name)}
	}
}

// lockRuntime acquires fr.mu, recording contended acquisitions in the
// invoke_lock_wait_ms histogram. The uncontended fast path is a single
// TryLock so the telemetry costs nothing when the sharding is doing its
// job. In the -invoke-shards 1 ablation every runtime shares one mutex,
// so this is where the seed's global serialization shows up.
func (dp *DataPlane) lockRuntime(fr *functionRuntime) {
	if fr.mu.TryLock() {
		return
	}
	start := time.Now()
	fr.mu.Lock()
	dp.mInvokeContended.Inc()
	dp.mInvokeWait.Observe(time.Since(start))
}

// endpointSnapshot is an immutable view of a function's ready endpoints,
// rebuilt under fr.mu whenever the endpoint set (or per-endpoint
// capacity) changes and published through fr.snap. Warm-start picks and
// metric reports read it without locking and without building a
// candidate slice per invocation; only the shared in-flight counters
// behind eps[i].InFlight mutate after publication.
type endpointSnapshot struct {
	eps    []loadbalancer.SnapshotEndpoint
	infos  []proto.SandboxInfo
	states []*endpointState
}

var emptySnapshot = &endpointSnapshot{}

// rebuildSnapshotLocked recomputes and publishes fr's endpoint snapshot.
// Callers hold fr.mu.
func (dp *DataPlane) rebuildSnapshotLocked(fr *functionRuntime) {
	if len(fr.endpoints) == 0 {
		fr.snap.Store(emptySnapshot)
		return
	}
	snap := &endpointSnapshot{
		eps:    make([]loadbalancer.SnapshotEndpoint, 0, len(fr.endpoints)),
		infos:  make([]proto.SandboxInfo, 0, len(fr.endpoints)),
		states: make([]*endpointState, 0, len(fr.endpoints)),
	}
	for _, st := range fr.endpoints {
		snap.eps = append(snap.eps, loadbalancer.SnapshotEndpoint{
			SandboxID: st.info.ID,
			Addr:      st.info.Addr,
			InFlight:  &st.inFlight,
			Capacity:  st.capacity,
		})
		snap.infos = append(snap.infos, st.info)
		snap.states = append(snap.states, st)
	}
	fr.snap.Store(snap)
	dp.metrics.Counter("endpoint_snapshot_rebuilds").Inc()
}
