package dataplane

import (
	"fmt"
	"sync/atomic"

	"dirigent/internal/codec"
)

// Asynchronous invocations provide at-least-once semantics "through
// request persistence and a retry policy" (paper §3.4.2). When the data
// plane is configured with a persistent store, every accepted async
// invocation is durably recorded before acknowledgement and deleted only
// after it completes or exhausts its retries; a restarted replica
// re-enqueues whatever survived the crash. Re-execution of a task that
// completed between persistence and deletion is possible — exactly the
// at-least-once contract FaaS platforms document, which is why they advise
// idempotent functions (paper §2.1).

// asyncQueueHash is the store hash holding pending async invocations.
const asyncQueueHash = "async-queue"

var asyncSeq atomic.Uint64

func marshalAsyncTask(t asyncTask) []byte {
	e := codec.NewEncoder(16 + len(t.function) + len(t.payload))
	e.String(t.function)
	e.RawBytes(t.payload)
	e.I64(int64(t.attempt))
	return e.Bytes()
}

func unmarshalAsyncTask(b []byte) (asyncTask, error) {
	d := codec.NewDecoder(b)
	var t asyncTask
	t.function = d.String()
	if p := d.RawBytes(); len(p) > 0 {
		t.payload = append([]byte(nil), p...)
	}
	t.attempt = int(d.I64())
	if err := d.Err(); err != nil {
		return asyncTask{}, fmt.Errorf("dataplane: unmarshal async task: %w", err)
	}
	return t, nil
}

// persistAsync durably records an accepted async invocation and returns
// the key under which it is stored ("" when persistence is disabled).
func (dp *DataPlane) persistAsync(t asyncTask) (string, error) {
	if dp.cfg.AsyncStore == nil {
		return "", nil
	}
	key := fmt.Sprintf("%d-%d", dp.cfg.ID, asyncSeq.Add(1))
	if err := dp.cfg.AsyncStore.HSet(asyncQueueHash, key, marshalAsyncTask(t)); err != nil {
		return "", err
	}
	return key, nil
}

// settleAsync removes a completed (or permanently failed) task from the
// durable queue.
func (dp *DataPlane) settleAsync(key string) {
	if key == "" || dp.cfg.AsyncStore == nil {
		return
	}
	if err := dp.cfg.AsyncStore.HDel(asyncQueueHash, key); err != nil {
		dp.metrics.Counter("async_settle_errors").Inc()
	}
}

// recoverAsync re-enqueues tasks that were durably accepted but not yet
// settled when the previous replica incarnation crashed.
func (dp *DataPlane) recoverAsync() {
	if dp.cfg.AsyncStore == nil {
		return
	}
	for key, raw := range dp.cfg.AsyncStore.HGetAll(asyncQueueHash) {
		task, err := unmarshalAsyncTask(raw)
		if err != nil {
			// Unreadable record: drop it rather than crash-loop.
			dp.cfg.AsyncStore.HDel(asyncQueueHash, key)
			dp.metrics.Counter("async_recover_corrupt").Inc()
			continue
		}
		task.storeKey = key
		task.attempt = 0 // restart the retry budget after recovery
		select {
		case dp.asyncCh <- task:
			dp.metrics.Counter("async_recovered").Inc()
		default:
			dp.metrics.Counter("async_recover_overflow").Inc()
		}
	}
}

// PendingAsync reports the number of durably queued async invocations.
func (dp *DataPlane) PendingAsync() int {
	if dp.cfg.AsyncStore == nil {
		return len(dp.asyncCh)
	}
	return dp.cfg.AsyncStore.HLen(asyncQueueHash)
}
