package dataplane

import (
	"fmt"
	"sync/atomic"

	"dirigent/internal/codec"
	"dirigent/internal/core"
)

// Asynchronous invocations provide at-least-once semantics "through
// request persistence and a retry policy" (paper §3.4.2). When the data
// plane is configured with a persistent store, every accepted async
// invocation is durably recorded before acknowledgement and deleted only
// after it completes or exhausts its retries; a restarted replica
// re-enqueues whatever survived the crash. Re-execution of a task that
// completed between persistence and deletion is possible — exactly the
// at-least-once contract FaaS platforms document, which is why they advise
// idempotent functions (paper §2.1).
//
// The queue is sharded by function hash (Config.AsyncShards, default 32):
// each shard owns its own pending channel, its own dispatch loop, and its
// own store hash, so acceptance, dispatch, persistence and crash replay
// all scale with the shard count instead of serializing on one channel
// and one store hash. AsyncShards=1 restores the seed single-queue design
// (including the seed's exact store hash) for the ablation.

// asyncQueueHash is the seed's store hash for pending async invocations:
// the only hash in the AsyncShards=1 ablation, and the legacy hash a
// sharded replica still replays after an upgrade restart.
const asyncQueueHash = "async-queue"

// asyncIndexHash records every shard hash that has ever held a durable
// record, so crash replay can scan exactly the hashes any earlier
// -async-shards configuration wrote — no shard-count change can strand
// an acknowledged task.
const asyncIndexHash = "async-queue-index"

// defaultAsyncShards matches the data plane's registry striping.
const defaultAsyncShards = 32

// seedAsyncQueueCap is the seed's single-queue channel capacity. Every
// shard gets the full seed capacity — splitting it would cut how big an
// async burst one hot function can absorb (all of a function's tasks
// hash to one shard), a regression the seed queue didn't have. Total
// buffering therefore scales with the shard count, like the rest of the
// sharded queue.
const seedAsyncQueueCap = 4096

var asyncSeq atomic.Uint64

// asyncShard is one stripe of the asynchronous queue: a pending-task
// channel drained by its own dispatch loop, plus the store hash its
// durable records live under. indexed flips once the hash has been
// registered in asyncIndexHash, so the index write costs one HSet per
// shard per store lifetime.
type asyncShard struct {
	hash    string
	ch      chan asyncTask
	indexed atomic.Bool
}

func newAsyncShards(n int) []*asyncShard {
	shards := make([]*asyncShard, n)
	for i := range shards {
		hash := asyncQueueHash
		if n > 1 {
			hash = fmt.Sprintf("%s-%d", asyncQueueHash, i)
		}
		shards[i] = &asyncShard{hash: hash, ch: make(chan asyncTask, seedAsyncQueueCap)}
	}
	return shards
}

// asyncShardFor maps a function to its queue stripe (same FNV-1a striping
// as the invoke registry, so a function's tasks always replay in order
// from one shard's hash).
func (dp *DataPlane) asyncShardFor(function string) *asyncShard {
	return dp.asyncShards[uint32(core.FunctionHash(function))%uint32(len(dp.asyncShards))]
}

func marshalAsyncTask(t asyncTask) []byte {
	e := codec.NewEncoder(16 + len(t.function) + len(t.payload))
	e.String(t.function)
	e.RawBytes(t.payload)
	e.I64(int64(t.attempt))
	return e.Bytes()
}

func unmarshalAsyncTask(b []byte) (asyncTask, error) {
	d := codec.NewDecoder(b)
	var t asyncTask
	t.function = d.String()
	if p := d.RawBytes(); len(p) > 0 {
		t.payload = append([]byte(nil), p...)
	}
	t.attempt = int(d.I64())
	if err := d.Err(); err != nil {
		return asyncTask{}, fmt.Errorf("dataplane: unmarshal async task: %w", err)
	}
	return t, nil
}

// persistAsync durably records an accepted async invocation under its
// shard's store hash, filling in the task's store coordinates (no-ops
// when persistence is disabled).
func (dp *DataPlane) persistAsync(sh *asyncShard, t *asyncTask) error {
	if dp.cfg.AsyncStore == nil {
		return nil
	}
	if !sh.indexed.Load() {
		if err := dp.cfg.AsyncStore.HSet(asyncIndexHash, sh.hash, []byte{1}); err != nil {
			return err
		}
		sh.indexed.Store(true)
	}
	key := fmt.Sprintf("%d-%d", dp.cfg.ID, asyncSeq.Add(1))
	if err := dp.cfg.AsyncStore.HSet(sh.hash, key, marshalAsyncTask(*t)); err != nil {
		return err
	}
	t.storeKey = key
	t.storeHash = sh.hash
	return nil
}

// observeAsyncKey raises the key-sequence high-water mark past a
// recovered record's key, so keys minted after a restart can never
// collide with (and overwrite, or cross-settle) a recovered task's
// still-unsettled record.
func observeAsyncKey(key string) {
	dash := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '-' {
			dash = i
		}
	}
	if dash < 0 || dash+1 >= len(key) {
		return
	}
	var seq uint64
	for _, c := range key[dash+1:] {
		if c < '0' || c > '9' {
			return
		}
		seq = seq*10 + uint64(c-'0')
	}
	for {
		cur := asyncSeq.Load()
		if seq <= cur || asyncSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// settleAsync removes a completed (or permanently failed) task from the
// durable queue.
func (dp *DataPlane) settleAsync(t *asyncTask) {
	if t.storeKey == "" || dp.cfg.AsyncStore == nil {
		return
	}
	if err := dp.cfg.AsyncStore.HDel(t.storeHash, t.storeKey); err != nil {
		dp.metrics.Counter("async_settle_errors").Inc()
	}
}

// asyncStoreHashes returns every store hash replay must scan: each
// configured shard's hash, the seed's unsharded hash, and every hash
// the store's index says has ever held a record — so a restart with any
// different -async-shards value (up or down, any count) still replays
// every durable record. Scanning an empty hash costs nothing, while
// missing one would strand acknowledged tasks. Each recovered task
// keeps its original store coordinates for settlement, wherever it was
// found.
func (dp *DataPlane) asyncStoreHashes() []string {
	seen := map[string]bool{asyncQueueHash: true}
	hashes := []string{asyncQueueHash}
	add := func(h string) {
		if !seen[h] {
			seen[h] = true
			hashes = append(hashes, h)
		}
	}
	for _, sh := range dp.asyncShards {
		add(sh.hash)
	}
	if dp.cfg.AsyncStore != nil {
		for h := range dp.cfg.AsyncStore.HGetAll(asyncIndexHash) {
			add(h)
		}
	}
	return hashes
}

// recoverAsync re-enqueues tasks that were durably accepted but not yet
// settled when the previous replica incarnation crashed. Each task is
// routed to the shard that owns its function under the current
// configuration, regardless of which hash it was persisted under.
func (dp *DataPlane) recoverAsync() {
	if dp.cfg.AsyncStore == nil {
		return
	}
	for _, hash := range dp.asyncStoreHashes() {
		for key, raw := range dp.cfg.AsyncStore.HGetAll(hash) {
			task, err := unmarshalAsyncTask(raw)
			if err != nil {
				// Unreadable record: drop it rather than crash-loop.
				dp.cfg.AsyncStore.HDel(hash, key)
				dp.metrics.Counter("async_recover_corrupt").Inc()
				continue
			}
			task.storeKey = key
			task.storeHash = hash
			task.attempt = 0 // restart the retry budget after recovery
			// Fresh keys must never collide with this record's key: a
			// collision would overwrite (or cross-settle) whichever
			// task loses the race, silently dropping an acknowledged
			// invocation on the next crash.
			observeAsyncKey(key)
			select {
			case dp.asyncShardFor(task.function).ch <- task:
				dp.metrics.Counter("async_recovered").Inc()
			default:
				dp.metrics.Counter("async_recover_overflow").Inc()
			}
		}
	}
}

// PendingAsync reports the number of queued async invocations: durable
// records across every shard hash when persistence is on, buffered
// channel depth otherwise.
func (dp *DataPlane) PendingAsync() int {
	if dp.cfg.AsyncStore == nil {
		n := 0
		for _, sh := range dp.asyncShards {
			n += len(sh.ch)
		}
		return n
	}
	n := 0
	for _, hash := range dp.asyncStoreHashes() {
		n += dp.cfg.AsyncStore.HLen(hash)
	}
	return n
}
