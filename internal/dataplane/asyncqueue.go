package dataplane

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dirigent/internal/codec"
	"dirigent/internal/core"
	"dirigent/internal/store"
)

// Asynchronous invocations provide at-least-once semantics "through
// request persistence and a retry policy" (paper §3.4.2). When the data
// plane is configured with a persistent store, every accepted async
// invocation is durably recorded before acknowledgement and deleted only
// after it completes or exhausts its retries; a restarted replica
// re-enqueues whatever survived the crash. Re-execution of a task that
// completed between persistence and deletion is possible — exactly the
// at-least-once contract FaaS platforms document, which is why they advise
// idempotent functions (paper §2.1).
//
// The queue is sharded by function hash (Config.AsyncShards, default 32):
// each shard owns its own pending buffer, its own dispatch loop, and its
// own store hash, so acceptance, dispatch, persistence and crash replay
// all scale with the shard count instead of serializing on one buffer
// and one store hash. AsyncShards=1 restores the seed single-queue design
// (including the seed's exact store hash) for the ablation.
//
// Inside a shard, pending tasks are kept in per-function FIFO queues
// dispatched deficit-round-robin, so one hot function's burst fills only
// its own queue's share of dispatch slots instead of head-of-line
// blocking every co-resident function the way the old single FIFO
// channel did. Order within a function is unchanged (still FIFO), so the
// seed's per-function semantics are preserved.
//
// Records carry their owner replica in the store key ("<id>-<seq>"), so
// replicas that share one durable store coexist in the same hashes; the
// control plane can lease a dead owner's records to survivors (see
// asynclease.go) instead of stranding them until that exact replica
// restarts.

// asyncQueueHash is the seed's store hash for pending async invocations:
// the only hash in the AsyncShards=1 ablation, and the legacy hash a
// sharded replica still replays after an upgrade restart.
const asyncQueueHash = "async-queue"

// asyncIndexHash records every shard hash that has ever held a durable
// record, so crash replay can scan exactly the hashes any earlier
// -async-shards configuration wrote — no shard-count change can strand
// an acknowledged task.
const asyncIndexHash = "async-queue-index"

// defaultAsyncShards matches the data plane's registry striping.
const defaultAsyncShards = 32

// seedAsyncQueueCap is the seed's single-queue channel capacity. Every
// shard gets the full seed capacity — splitting it would cut how big an
// async burst one hot function can absorb (all of a function's tasks
// hash to one shard), a regression the seed queue didn't have. Total
// buffering therefore scales with the shard count, like the rest of the
// sharded queue.
const seedAsyncQueueCap = 4096

// asyncDRRQuantum is the deficit-round-robin quantum: how many tasks one
// function's queue may dispatch before yielding the shard to the next
// active function. Small enough that a co-resident function waits at
// most quantum×(active functions) dispatches, large enough to keep a
// single-function workload's dispatch loop tight.
const asyncDRRQuantum = 8

var asyncSeq atomic.Uint64

var (
	errAsyncQueueFull = errors.New("data plane: async queue full")
	errAsyncQuota     = errors.New("data plane: async per-function quota exceeded")
)

// asyncFnQueue is one function's FIFO inside a shard. A queue is present
// in the shard's map and dispatch ring exactly while it has tasks.
type asyncFnQueue struct {
	name    string
	tasks   []asyncTask
	deficit int
}

// asyncShard is one stripe of the asynchronous queue: per-function
// pending FIFOs dispatched deficit-round-robin by the shard's own
// dispatch loop, plus the store hash its durable records live under.
// indexed flips once the hash has been registered in asyncIndexHash, so
// the index write costs one HSet per shard per store lifetime.
type asyncShard struct {
	hash    string
	indexed atomic.Bool

	mu      sync.Mutex
	cond    *sync.Cond
	fns     map[string]*asyncFnQueue
	ring    []*asyncFnQueue // active (non-empty) queues, DRR order
	ringIdx int
	size    int // total queued tasks across fns
	capa    int // admission bound on size (seed channel capacity)
	quota   int // per-function bound for client accepts, 0 = off
	stopped bool
}

func newAsyncShard(hash string, capa, quota int) *asyncShard {
	sh := &asyncShard{hash: hash, capa: capa, quota: quota, fns: make(map[string]*asyncFnQueue)}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

func newAsyncShards(n, quota int) []*asyncShard {
	shards := make([]*asyncShard, n)
	for i := range shards {
		hash := asyncQueueHash
		if n > 1 {
			hash = fmt.Sprintf("%s-%d", asyncQueueHash, i)
		}
		shards[i] = newAsyncShard(hash, seedAsyncQueueCap, quota)
	}
	return shards
}

// pushLocked appends t to its function's FIFO, activating the queue in
// the dispatch ring if it was empty. Callers hold sh.mu.
func (sh *asyncShard) pushLocked(t asyncTask) {
	fq := sh.fns[t.function]
	if fq == nil {
		fq = &asyncFnQueue{name: t.function}
		sh.fns[t.function] = fq
		sh.ring = append(sh.ring, fq)
	}
	fq.tasks = append(fq.tasks, t)
	sh.size++
	sh.cond.Broadcast()
}

// tryAdmit queues t without blocking: errAsyncQueueFull when the shard is
// at capacity (or stopping), errAsyncQuota when enforceQuota is set and
// the function already has quota tasks pending. Quota applies only to
// client accepts — recovery, lease drains and retries bypass it, since
// rejecting an already-acknowledged task cannot un-acknowledge it.
func (sh *asyncShard) tryAdmit(t asyncTask, enforceQuota bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped || sh.size >= sh.capa {
		return errAsyncQueueFull
	}
	if enforceQuota && sh.quota > 0 {
		if fq := sh.fns[t.function]; fq != nil && len(fq.tasks) >= sh.quota {
			return errAsyncQuota
		}
	}
	sh.pushLocked(t)
	return nil
}

// admitBlocking queues t, waiting for capacity if the shard is full.
// Returns false only when the shard is stopping (the caller's durable
// record stays put for the next incarnation). Used by crash recovery and
// lease drains, whose tasks were acknowledged long ago and must be
// dispatched in this incarnation rather than dropped on overflow.
func (sh *asyncShard) admitBlocking(t asyncTask) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.size >= sh.capa && !sh.stopped {
		sh.cond.Wait()
	}
	if sh.stopped {
		return false
	}
	sh.pushLocked(t)
	return true
}

// next blocks until a task is dispatchable and pops it deficit-round-
// robin: each active function's FIFO dispatches up to asyncDRRQuantum
// tasks per ring visit, so a hot function's burst cannot starve
// co-resident functions. Returns false when the shard is stopping.
func (sh *asyncShard) next() (asyncTask, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.size == 0 && !sh.stopped {
		sh.cond.Wait()
	}
	if sh.stopped {
		return asyncTask{}, false
	}
	if sh.ringIdx >= len(sh.ring) {
		sh.ringIdx = 0
	}
	fq := sh.ring[sh.ringIdx]
	if fq.deficit <= 0 {
		fq.deficit = asyncDRRQuantum
	}
	t := fq.tasks[0]
	fq.tasks[0] = asyncTask{} // drop payload reference
	fq.tasks = fq.tasks[1:]
	fq.deficit--
	sh.size--
	if len(fq.tasks) == 0 {
		delete(sh.fns, fq.name)
		sh.ring = append(sh.ring[:sh.ringIdx], sh.ring[sh.ringIdx+1:]...)
	} else if fq.deficit == 0 {
		sh.ringIdx++
	}
	sh.cond.Broadcast()
	return t, true
}

// pending reports the shard's queued task count.
func (sh *asyncShard) pending() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.size
}

// stop wakes every blocked admitter and the dispatch loop; tasks still
// queued are abandoned in memory (their durable records survive).
func (sh *asyncShard) stop() {
	sh.mu.Lock()
	sh.stopped = true
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// asyncShardFor maps a function to its queue stripe (same FNV-1a striping
// as the invoke registry, so a function's tasks always replay in order
// from one shard's hash).
func (dp *DataPlane) asyncShardFor(function string) *asyncShard {
	return dp.asyncShards[uint32(core.FunctionHash(function))%uint32(len(dp.asyncShards))]
}

func marshalAsyncTask(t asyncTask) []byte {
	e := codec.NewEncoder(16 + len(t.function) + len(t.payload))
	e.String(t.function)
	e.RawBytes(t.payload)
	e.I64(int64(t.attempt))
	return e.Bytes()
}

func unmarshalAsyncTask(b []byte) (asyncTask, error) {
	d := codec.NewDecoder(b)
	var t asyncTask
	t.function = d.String()
	if p := d.RawBytes(); len(p) > 0 {
		t.payload = append([]byte(nil), p...)
	}
	t.attempt = int(d.I64())
	if err := d.Err(); err != nil {
		return asyncTask{}, fmt.Errorf("dataplane: unmarshal async task: %w", err)
	}
	return t, nil
}

// persistAsync durably records an accepted async invocation under its
// shard's store hash, filling in the task's store coordinates (no-ops
// when persistence is disabled).
func (dp *DataPlane) persistAsync(sh *asyncShard, t *asyncTask) error {
	if dp.cfg.AsyncStore == nil {
		return nil
	}
	if !sh.indexed.Load() {
		if err := dp.cfg.AsyncStore.HSet(asyncIndexHash, sh.hash, []byte{1}); err != nil {
			return err
		}
		sh.indexed.Store(true)
	}
	key := core.AsyncTaskKey(dp.cfg.ID, asyncSeq.Add(1))
	if err := dp.cfg.AsyncStore.HSet(sh.hash, key, marshalAsyncTask(*t)); err != nil {
		return err
	}
	t.storeKey = key
	t.storeHash = sh.hash
	return nil
}

// observeAsyncKey raises the key-sequence high-water mark past a
// recovered record's key, so keys minted after a restart can never
// collide with (and overwrite, or cross-settle) a recovered task's
// still-unsettled record.
func observeAsyncKey(key string) {
	dash := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '-' {
			dash = i
		}
	}
	if dash < 0 || dash+1 >= len(key) {
		return
	}
	var seq uint64
	for _, c := range key[dash+1:] {
		if c < '0' || c > '9' {
			return
		}
		seq = seq*10 + uint64(c-'0')
	}
	for {
		cur := asyncSeq.Load()
		if seq <= cur || asyncSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// observeAsyncKeys scans every durable record before the listener opens:
// fresh keys must never collide with a surviving record's key, including
// records owned by other replicas sharing the store — a collision would
// overwrite (or cross-settle) whichever task loses the race, silently
// dropping an acknowledged invocation on the next crash.
func (dp *DataPlane) observeAsyncKeys() {
	if dp.cfg.AsyncStore == nil {
		return
	}
	for _, hash := range dp.asyncStoreHashes() {
		for key := range dp.cfg.AsyncStore.HGetAll(hash) {
			observeAsyncKey(key)
		}
	}
}

// settleAsync removes a completed (or permanently failed) task from the
// durable queue. Every settlement is fenced by the epoch of whoever owns
// the record right now: the replica's own queue epoch for tasks it
// accepted, the lease epoch for tasks drained on behalf of a dead owner.
// A fence rejection means a newer epoch took the records over — a lessee
// abandons the lease; an owner parks the settle until it adopts its
// revival epoch (the task ran, so it must not be re-dispatched here, but
// the record may only be deleted once this replica out-fences the lease).
func (dp *DataPlane) settleAsync(t *asyncTask) {
	if t.storeKey == "" || dp.cfg.AsyncStore == nil {
		return
	}
	owner, epoch := dp.cfg.ID, dp.queueEpoch.Load()
	if t.leased {
		owner, epoch = t.leaseOwner, t.leaseEpoch
	}
	err := dp.cfg.AsyncStore.HDelFenced(t.storeHash, t.storeKey, asyncFenceHash, asyncFenceField(owner), epoch)
	switch {
	case err == nil:
		if t.leased {
			dp.forgetLeasedKey(t.storeHash, t.storeKey)
		}
	case errors.Is(err, store.ErrFenced):
		dp.metrics.Counter("async_settle_fenced").Inc()
		if t.leased {
			// The lease may have been re-granted to this same replica at
			// a higher epoch while the task executed (a co-lessee died
			// and the sweep re-minted the owner's lease). This replica is
			// still the legitimate lessee, so retry at the upgraded epoch
			// — abandoning here would strand a record the re-grant's
			// rescan already skipped as queued.
			if e, ok := dp.currentLeaseEpoch(t.leaseOwner); ok && e > t.leaseEpoch {
				t.leaseEpoch = e
				dp.metrics.Counter("async_settle_upgraded").Inc()
				dp.settleAsync(t)
				return
			}
			dp.abandonLease(t.leaseOwner, t.leaseEpoch)
			dp.forgetLeasedKey(t.storeHash, t.storeKey)
		} else {
			dp.parkSettle(t.storeHash, t.storeKey)
		}
	default:
		dp.metrics.Counter("async_settle_errors").Inc()
	}
}

// asyncStoreHashes returns every store hash replay must scan: each
// configured shard's hash, the seed's unsharded hash, and every hash
// the store's index says has ever held a record — so a restart with any
// different -async-shards value (up or down, any count) still replays
// every durable record. Scanning an empty hash costs nothing, while
// missing one would strand acknowledged tasks. Each recovered task
// keeps its original store coordinates for settlement, wherever it was
// found.
func (dp *DataPlane) asyncStoreHashes() []string {
	seen := map[string]bool{asyncQueueHash: true}
	hashes := []string{asyncQueueHash}
	add := func(h string) {
		if !seen[h] {
			seen[h] = true
			hashes = append(hashes, h)
		}
	}
	for _, sh := range dp.asyncShards {
		add(sh.hash)
	}
	if dp.cfg.AsyncStore != nil {
		for h := range dp.cfg.AsyncStore.HGetAll(asyncIndexHash) {
			add(h)
		}
	}
	return hashes
}

// recoverAsync re-enqueues tasks that were durably accepted but not yet
// settled when the previous replica incarnation crashed. Each task is
// routed to the shard that owns its function under the current
// configuration, regardless of which hash it was persisted under. It
// runs as a background goroutine after the listener opens, admitting
// with backpressure: a recovery backlog larger than the shard buffers
// drains as dispatch frees space instead of overflowing — every
// acknowledged task is dispatched in this incarnation, not the next one.
//
// In a store shared by several replicas, only records this replica owns
// (key prefix "<own id>-") are recovered: live co-owners drain their
// own, and a dead co-owner's are the lease manager's to reassign. Keys
// in any other shape (hand-seeded or pre-owner-format records) have no
// other owner to claim them, so they recover here.
func (dp *DataPlane) recoverAsync() {
	defer dp.wg.Done()
	if dp.cfg.AsyncStore == nil {
		return
	}
	for _, hash := range dp.asyncStoreHashes() {
		for key, raw := range dp.cfg.AsyncStore.HGetAll(hash) {
			if dp.stopped.Load() {
				return
			}
			if owner, ok := core.AsyncTaskOwner(key); ok && owner != dp.cfg.ID {
				continue
			}
			task, err := unmarshalAsyncTask(raw)
			if err != nil {
				// Unreadable record: drop it rather than crash-loop.
				dp.cfg.AsyncStore.HDel(hash, key)
				dp.metrics.Counter("async_recover_corrupt").Inc()
				continue
			}
			task.storeKey = key
			task.storeHash = hash
			task.attempt = 0 // restart the retry budget after recovery
			if !dp.asyncShardFor(task.function).admitBlocking(task) {
				return
			}
			dp.metrics.Counter("async_recovered").Inc()
		}
	}
}

// PendingAsync reports the number of queued async invocations: durable
// records across every shard hash when persistence is on, buffered
// queue depth otherwise. With a store shared across replicas this counts
// the whole tier's records, not just this replica's.
func (dp *DataPlane) PendingAsync() int {
	if dp.cfg.AsyncStore == nil {
		n := 0
		for _, sh := range dp.asyncShards {
			n += sh.pending()
		}
		return n
	}
	n := 0
	for _, hash := range dp.asyncStoreHashes() {
		n += dp.cfg.AsyncStore.HLen(hash)
	}
	return n
}

// AsyncBacklog counts the durable async records remaining in st — the
// seed hash plus every hash the index lists. For a store shared by a DP
// tier this is the tier-wide ground truth ("zero stranded" means zero
// here), where summing PendingAsync over replicas would multiply-count
// the shared hashes.
func AsyncBacklog(st *store.Store) int {
	if st == nil {
		return 0
	}
	n := st.HLen(asyncQueueHash)
	for h := range st.HGetAll(asyncIndexHash) {
		if h != asyncQueueHash {
			n += st.HLen(h)
		}
	}
	return n
}
