package dataplane

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

func TestAsyncTaskMarshalRoundTrip(t *testing.T) {
	task := asyncTask{function: "f", payload: []byte{1, 2, 3}, attempt: 2}
	got, err := unmarshalAsyncTask(marshalAsyncTask(task))
	if err != nil {
		t.Fatal(err)
	}
	if got.function != task.function || !bytes.Equal(got.payload, task.payload) || got.attempt != task.attempt {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := unmarshalAsyncTask([]byte{0xFF}); err == nil {
		t.Errorf("truncated task should fail to unmarshal")
	}
}

func TestAsyncPersistedUntilCompletion(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	db := store.NewMemory()
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte("x")}
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	// The task must eventually complete and the durable record disappear.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter("async_completed").Value() >= 1 && db.HLen(asyncQueueHash) == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("async task not completed+settled: completed=%d pending=%d",
		dp.metrics.Counter("async_completed").Value(), db.HLen(asyncQueueHash))
}

func TestAsyncSurvivesDataPlaneRestart(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()

	// First incarnation: accept async invocations for a function with no
	// sandbox and no cold-start resolution (short queue timeout + many
	// retries keep them pending), then crash.
	dp1 := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   20 * time.Millisecond,
		AsyncRetries:   1_000_000,
		AsyncStore:     db,
	})
	if err := dp1.Start(); err != nil {
		t.Fatal(err)
	}
	pushFunction(t, tr, dp1.Addr(), "f")
	for i := 0; i < 3; i++ {
		req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte{byte(i)}}
		if _, err := tr.Call(context.Background(), dp1.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if db.HLen(asyncQueueHash) != 3 {
		t.Fatalf("persisted = %d, want 3", db.HLen(asyncQueueHash))
	}
	dp1.Stop() // crash: tasks remain durable

	// Second incarnation with the same store: tasks are recovered and,
	// once a sandbox exists, complete.
	startSandboxHost(t, tr, "w1:9000", 0)
	dp2 := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
		AsyncRetries:   10,
		AsyncStore:     db,
	})
	if err := dp2.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp2.Stop()
	if got := dp2.metrics.Counter("async_recovered").Value(); got != 3 {
		t.Fatalf("recovered = %d, want 3", got)
	}
	pushFunction(t, tr, dp2.Addr(), "f")
	pushEndpoints(t, tr, dp2.Addr(), "f", []core.SandboxID{1}, "w1:9000")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dp2.metrics.Counter("async_completed").Value() >= 3 && db.HLen(asyncQueueHash) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("recovered tasks not completed: completed=%d pending=%d",
		dp2.metrics.Counter("async_completed").Value(), db.HLen(asyncQueueHash))
}

func TestAsyncCorruptRecordDropped(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	db.HSet(asyncQueueHash, "bad", []byte{0xFF}) // unreadable record
	dp := New(Config{
		ID:            1,
		Addr:          "dp0:8000",
		Transport:     tr,
		ControlPlanes: []string{"cp"},
		AsyncStore:    db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	if db.HLen(asyncQueueHash) != 0 {
		t.Errorf("corrupt record not dropped")
	}
	if dp.metrics.Counter("async_recover_corrupt").Value() != 1 {
		t.Errorf("corrupt recovery not counted")
	}
}

func TestPendingAsyncWithoutStore(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := testDP(t, tr)
	if dp.PendingAsync() != 0 {
		t.Errorf("PendingAsync = %d", dp.PendingAsync())
	}
}
