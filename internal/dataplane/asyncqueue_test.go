package dataplane

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// waitCounter polls for a metrics counter to reach want — recovery and
// lease drains run in background goroutines, so counters converge rather
// than being synchronous with Start.
func waitCounter(t *testing.T, dp *DataPlane, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter(name).Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s = %d, want >= %d", name, dp.metrics.Counter(name).Value(), want)
}

func TestAsyncTaskMarshalRoundTrip(t *testing.T) {
	task := asyncTask{function: "f", payload: []byte{1, 2, 3}, attempt: 2}
	got, err := unmarshalAsyncTask(marshalAsyncTask(task))
	if err != nil {
		t.Fatal(err)
	}
	if got.function != task.function || !bytes.Equal(got.payload, task.payload) || got.attempt != task.attempt {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := unmarshalAsyncTask([]byte{0xFF}); err == nil {
		t.Errorf("truncated task should fail to unmarshal")
	}
}

func TestAsyncPersistedUntilCompletion(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	db := store.NewMemory()
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte("x")}
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	// The task must eventually complete and the durable record disappear.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter("async_completed").Value() >= 1 && dp.PendingAsync() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("async task not completed+settled: completed=%d pending=%d",
		dp.metrics.Counter("async_completed").Value(), dp.PendingAsync())
}

func TestAsyncSurvivesDataPlaneRestart(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()

	// First incarnation: accept async invocations for a function with no
	// sandbox and no cold-start resolution (short queue timeout + many
	// retries keep them pending), then crash.
	dp1 := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   20 * time.Millisecond,
		AsyncRetries:   1_000_000,
		AsyncStore:     db,
	})
	if err := dp1.Start(); err != nil {
		t.Fatal(err)
	}
	pushFunction(t, tr, dp1.Addr(), "f")
	for i := 0; i < 3; i++ {
		req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte{byte(i)}}
		if _, err := tr.Call(context.Background(), dp1.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if dp1.PendingAsync() != 3 {
		t.Fatalf("persisted = %d, want 3", dp1.PendingAsync())
	}
	dp1.Stop() // crash: tasks remain durable

	// Second incarnation with the same store: tasks are recovered and,
	// once a sandbox exists, complete.
	startSandboxHost(t, tr, "w1:9000", 0)
	dp2 := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
		AsyncRetries:   10,
		AsyncStore:     db,
	})
	if err := dp2.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp2.Stop()
	waitCounter(t, dp2, "async_recovered", 3)
	pushFunction(t, tr, dp2.Addr(), "f")
	pushEndpoints(t, tr, dp2.Addr(), "f", []core.SandboxID{1}, "w1:9000")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dp2.metrics.Counter("async_completed").Value() >= 3 && dp2.PendingAsync() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("recovered tasks not completed: completed=%d pending=%d",
		dp2.metrics.Counter("async_completed").Value(), dp2.PendingAsync())
}

func TestAsyncCorruptRecordDropped(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	db.HSet(asyncQueueHash, "bad", []byte{0xFF}) // unreadable record
	dp := New(Config{
		ID:            1,
		Addr:          "dp0:8000",
		Transport:     tr,
		ControlPlanes: []string{"cp"},
		AsyncStore:    db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	waitCounter(t, dp, "async_recover_corrupt", 1)
	if db.HLen(asyncQueueHash) != 0 {
		t.Errorf("corrupt record not dropped")
	}
}

func TestPendingAsyncWithoutStore(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := testDP(t, tr)
	if dp.PendingAsync() != 0 {
		t.Errorf("PendingAsync = %d", dp.PendingAsync())
	}
}

// TestAsyncShardsAblationSeedParity pins the -async-shards 1 ablation to
// the seed single-queue design: one shard, one dispatch loop feeding it,
// the seed's channel capacity, and — critically for restart
// compatibility — the seed's exact store hash for durable records.
func TestAsyncShardsAblationSeedParity(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   20 * time.Millisecond,
		AsyncRetries:   1_000_000, // keep tasks pending
		AsyncStore:     db,
		AsyncShards:    1,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	if len(dp.asyncShards) != 1 {
		t.Fatalf("AsyncShards=1 built %d shards", len(dp.asyncShards))
	}
	if got := dp.asyncShards[0].hash; got != asyncQueueHash {
		t.Fatalf("seed ablation store hash = %q, want %q", got, asyncQueueHash)
	}
	if got := dp.asyncShards[0].capa; got != seedAsyncQueueCap {
		t.Fatalf("seed ablation queue capacity = %d, want %d", got, seedAsyncQueueCap)
	}
	pushFunction(t, tr, dp.Addr(), "f")
	for i := 0; i < 3; i++ {
		req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte{byte(i)}}
		if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.HLen(asyncQueueHash); got != 3 {
		t.Fatalf("seed store hash holds %d records, want 3", got)
	}
}

// TestAsyncShardsSpreadPersistence verifies the sharded queue actually
// stripes: tasks for functions in different shards persist under
// different store hashes, and PendingAsync sums across all of them.
func TestAsyncShardsSpreadPersistence(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   20 * time.Millisecond,
		AsyncRetries:   1_000_000, // keep tasks pending
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	hashes := make(map[string]bool)
	for i := 0; i < 16; i++ {
		fn := fmt.Sprintf("spread-%d", i)
		pushFunction(t, tr, dp.Addr(), fn)
		hashes[dp.asyncShardFor(fn).hash] = true
		req := proto.InvokeRequest{Function: fn, Async: true}
		if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	if len(hashes) < 2 {
		t.Fatalf("16 functions all hashed to one shard; striping broken")
	}
	populated := 0
	for h := range hashes {
		if db.HLen(h) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("durable records concentrated in %d hash(es), want >= 2", populated)
	}
	if got := dp.PendingAsync(); got != 16 {
		t.Errorf("PendingAsync = %d, want 16 across shards", got)
	}
}

// TestAsyncRecoverAcrossShardConfigs covers crash replay across
// -async-shards reconfigurations in both directions: records persisted
// by the seed single-queue config are recovered (and settled in place)
// by a sharded replica, and records persisted sharded are recovered by a
// seed-config replica.
func TestAsyncRecoverAcrossShardConfigs(t *testing.T) {
	for _, tc := range []struct {
		name                    string
		firstShards, nextShards int
	}{
		{"seed-to-sharded", 1, 0},
		{"sharded-to-seed", 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := transport.NewInProc()
			startFakeCP(t, tr, "cp")
			db := store.NewMemory()
			dp1 := New(Config{
				ID:             1,
				Addr:           "dp0:8000",
				Transport:      tr,
				ControlPlanes:  []string{"cp"},
				MetricInterval: time.Hour,
				QueueTimeout:   20 * time.Millisecond,
				AsyncRetries:   1_000_000,
				AsyncStore:     db,
				AsyncShards:    tc.firstShards,
			})
			if err := dp1.Start(); err != nil {
				t.Fatal(err)
			}
			pushFunction(t, tr, dp1.Addr(), "f")
			for i := 0; i < 3; i++ {
				req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte{byte(i)}}
				if _, err := tr.Call(context.Background(), dp1.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
					t.Fatal(err)
				}
			}
			dp1.Stop() // crash with 3 durable tasks

			startSandboxHost(t, tr, "w1:9000", 0)
			dp2 := New(Config{
				ID:             1,
				Addr:           "dp0:8000",
				Transport:      tr,
				ControlPlanes:  []string{"cp"},
				MetricInterval: time.Hour,
				QueueTimeout:   2 * time.Second,
				AsyncRetries:   10,
				AsyncStore:     db,
				AsyncShards:    tc.nextShards,
			})
			if err := dp2.Start(); err != nil {
				t.Fatal(err)
			}
			defer dp2.Stop()
			waitCounter(t, dp2, "async_recovered", 3)
			pushFunction(t, tr, dp2.Addr(), "f")
			pushEndpoints(t, tr, dp2.Addr(), "f", []core.SandboxID{1}, "w1:9000")
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if dp2.metrics.Counter("async_completed").Value() >= 3 && dp2.PendingAsync() == 0 {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatalf("recovered tasks not completed+settled: completed=%d pending=%d",
				dp2.metrics.Counter("async_completed").Value(), dp2.PendingAsync())
		})
	}
}

// TestAsyncRecoveredKeyNotReused: after a crash replay, freshly minted
// store keys must never collide with a recovered task's key — a
// collision would overwrite the recovered record (losing it on the next
// crash) or let either task's settlement delete the other's record.
func TestAsyncRecoveredKeyNotReused(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	// A durable record whose key sequence is exactly where the replica's
	// key counter would mint next — the collision case.
	collidingKey := fmt.Sprintf("1-%d", asyncSeq.Load()+1)
	db.HSet(asyncQueueHash, collidingKey, marshalAsyncTask(asyncTask{function: "f"}))

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   20 * time.Millisecond,
		AsyncRetries:   1_000_000, // keep both tasks pending
		AsyncStore:     db,
		AsyncShards:    1,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	waitCounter(t, dp, "async_recovered", 1)
	pushFunction(t, tr, dp.Addr(), "f")
	req := proto.InvokeRequest{Function: "f", Async: true}
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	// Both the recovered and the new record must coexist durably.
	if got := db.HLen(asyncQueueHash); got != 2 {
		t.Fatalf("store holds %d records, want 2 (new key reused %q)", got, collidingKey)
	}
}
