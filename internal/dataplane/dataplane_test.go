package dataplane

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// fakeCP accepts data plane registration and collects metric reports.
type fakeCP struct {
	mu      sync.Mutex
	reports []proto.ScalingMetricReport
	regs    []core.DataPlane
}

func startFakeCP(t *testing.T, tr *transport.InProc, addr string) *fakeCP {
	t.Helper()
	cp := &fakeCP{}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		switch method {
		case proto.MethodRegisterDataPlane:
			req, err := proto.UnmarshalRegisterDataPlaneRequest(payload)
			if err != nil {
				return nil, err
			}
			cp.regs = append(cp.regs, req.DataPlane)
		case proto.MethodScalingMetric:
			rep, err := proto.UnmarshalScalingMetricReport(payload)
			if err != nil {
				return nil, err
			}
			cp.reports = append(cp.reports, *rep)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return cp
}

// fakeSandboxHost serves wn.InvokeSandbox with a configurable handler.
type fakeSandboxHost struct {
	mu       sync.Mutex
	inflight int
	maxSeen  int
	delay    time.Duration
}

func startSandboxHost(t *testing.T, tr *transport.InProc, addr string, delay time.Duration) *fakeSandboxHost {
	t.Helper()
	h := &fakeSandboxHost{delay: delay}
	ln, err := tr.Listen(addr, func(method string, payload []byte) ([]byte, error) {
		if method != proto.MethodInvokeSandbox {
			return nil, fmt.Errorf("unexpected method %s", method)
		}
		req, err := proto.UnmarshalInvokeSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		h.mu.Lock()
		h.inflight++
		if h.inflight > h.maxSeen {
			h.maxSeen = h.inflight
		}
		h.mu.Unlock()
		if h.delay > 0 {
			time.Sleep(h.delay)
		}
		h.mu.Lock()
		h.inflight--
		h.mu.Unlock()
		return append([]byte("done:"), req.Payload...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return h
}

func testDP(t *testing.T, tr *transport.InProc) *DataPlane {
	t.Helper()
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dp.Stop)
	return dp
}

func pushFunction(t *testing.T, tr *transport.InProc, dpAddr, name string) {
	t.Helper()
	list := proto.FunctionList{Functions: []core.Function{{
		Name: name, Image: "img", Port: 80, Scaling: core.DefaultScalingConfig(),
	}}}
	if _, err := tr.Call(context.Background(), dpAddr, proto.MethodAddFunction, list.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func pushEndpoints(t *testing.T, tr *transport.InProc, dpAddr, fn string, ids []core.SandboxID, hostAddr string) {
	t.Helper()
	update := proto.EndpointUpdate{Function: fn}
	for _, id := range ids {
		update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
			ID: id, Function: fn, Node: 1, Addr: hostAddr, State: core.SandboxReady,
		})
	}
	if _, err := tr.Call(context.Background(), dpAddr, proto.MethodUpdateEndpoints, update.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func invoke(tr *transport.InProc, dpAddr, fn string, payload []byte) (*proto.InvokeResponse, error) {
	req := proto.InvokeRequest{Function: fn, Payload: payload}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	respB, err := tr.Call(ctx, dpAddr, proto.MethodInvoke, req.Marshal())
	if err != nil {
		return nil, err
	}
	return proto.UnmarshalInvokeResponse(respB)
}

func TestWarmInvokeProxies(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	resp, err := invoke(tr, dp.Addr(), "f", []byte("x"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if resp.ColdStart {
		t.Errorf("invocation with a ready endpoint should be warm")
	}
	if !bytes.Equal(resp.Body, []byte("done:x")) {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestColdInvokeWaitsForEndpoint(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")

	done := make(chan *proto.InvokeResponse, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := invoke(tr, dp.Addr(), "f", []byte("y"))
		if err != nil {
			errCh <- err
			return
		}
		done <- resp
	}()
	// Wait until the request queues.
	deadline := time.Now().Add(2 * time.Second)
	for dp.QueueDepth("f") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dp.QueueDepth("f") != 1 {
		t.Fatalf("queue depth = %d, want 1", dp.QueueDepth("f"))
	}
	// Endpoint arrives (control plane broadcast): queue drains.
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{9}, "w1:9000")
	select {
	case resp := <-done:
		if !resp.ColdStart {
			t.Errorf("queued invocation should report cold start")
		}
		if resp.SchedulingLatencyUs <= 0 {
			t.Errorf("cold scheduling latency = %d", resp.SchedulingLatencyUs)
		}
	case err := <-errCh:
		t.Fatalf("invoke: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatalf("queued invocation never dispatched")
	}
}

func TestConcurrencyThrottling(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	host := startSandboxHost(t, tr, "w1:9000", 30*time.Millisecond)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	// Two sandboxes with capacity 1 each: at most 2 concurrent requests
	// may reach the worker.
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1, 2}, "w1:9000")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := invoke(tr, dp.Addr(), "f", nil); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	host.mu.Lock()
	maxSeen := host.maxSeen
	host.mu.Unlock()
	if maxSeen > 2 {
		t.Errorf("max concurrent requests at sandbox host = %d, want <= 2 (throttled)", maxSeen)
	}
}

func TestUnknownFunctionRejected(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := testDP(t, tr)
	if _, err := invoke(tr, dp.Addr(), "ghost", nil); err == nil {
		t.Errorf("unknown function should be rejected")
	}
}

func TestQueueTimeout(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   50 * time.Millisecond,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	// No endpoints ever arrive: the invocation must time out and leave
	// the queue clean.
	if _, err := invoke(tr, dp.Addr(), "f", nil); err == nil {
		t.Fatalf("expected queue timeout")
	}
	if dp.QueueDepth("f") != 0 {
		t.Errorf("queue not cleaned after timeout: %d", dp.QueueDepth("f"))
	}
}

func TestEndpointRemovalStopsRouting(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")
	if _, err := invoke(tr, dp.Addr(), "f", nil); err != nil {
		t.Fatal(err)
	}
	// CP broadcasts an empty endpoint set (sandbox torn down).
	pushEndpoints(t, tr, dp.Addr(), "f", nil, "w1:9000")
	if dp.EndpointCount("f") != 0 {
		t.Errorf("endpoints not removed")
	}
}

func TestMetricReportsIncludeQueueDepth(t *testing.T) {
	tr := transport.NewInProc()
	cp := startFakeCP(t, tr, "cp")
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	go invoke(tr, dp.Addr(), "f", nil) // queues: no endpoint exists
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		cp.mu.Lock()
		for _, rep := range cp.reports {
			for _, m := range rep.Metrics {
				if m.Function == "f" && m.QueueDepth >= 1 {
					cp.mu.Unlock()
					return
				}
			}
		}
		cp.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no metric report with queue depth arrived at the control plane")
}

func TestAsyncInvokeAcceptsAndExecutes(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte("bg")}
	ctx := context.Background()
	respB, err := tr.Call(ctx, dp.Addr(), proto.MethodInvoke, req.Marshal())
	if err != nil {
		t.Fatalf("async accept: %v", err)
	}
	resp, err := proto.UnmarshalInvokeResponse(respB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, []byte("accepted")) {
		t.Errorf("async accept body = %q", resp.Body)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter("async_completed").Value() >= 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("async invocation never completed")
}

func TestAsyncRetriesOnFailure(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   30 * time.Millisecond, // sync attempts fail fast
		AsyncRetries:   2,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	req := proto.InvokeRequest{Function: "f", Async: true}
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter("async_failed").Value() >= 1 {
			if dp.metrics.Counter("async_retries").Value() < 2 {
				t.Errorf("retries = %d, want >= 2", dp.metrics.Counter("async_retries").Value())
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("async invocation never exhausted retries")
}

func TestFunctionRemovalFailsQueued(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	errCh := make(chan error, 1)
	go func() {
		_, err := invoke(tr, dp.Addr(), "f", nil)
		errCh <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for dp.QueueDepth("f") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// CP removes the function (empty function list push).
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodAddFunction, (&proto.FunctionList{}).Marshal()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Errorf("queued invocation should fail when the function is removed")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("queued invocation hung after function removal")
	}
}

func TestStaleEndpointUpdateDiscarded(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")

	send := func(version uint64, ids ...core.SandboxID) {
		update := proto.EndpointUpdate{Function: "f", Version: version}
		for _, id := range ids {
			update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
				ID: id, Function: "f", Node: 1, Addr: "w:9000", State: core.SandboxReady,
			})
		}
		if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodUpdateEndpoints, update.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	// Newer update (3 endpoints) arrives before an older one (2): the
	// older broadcast must not regress the cache.
	send(1<<32|2, 1, 2, 3)
	send(1<<32|1, 1, 2)
	if got := dp.EndpointCount("f"); got != 3 {
		t.Fatalf("stale update regressed cache: %d endpoints, want 3", got)
	}
	if dp.metrics.Counter("endpoint_updates_stale").Value() != 1 {
		t.Errorf("stale update not counted")
	}
	// A higher leadership epoch always wins, even with a lower sequence.
	send(2<<32|1, 9)
	if got := dp.EndpointCount("f"); got != 1 {
		t.Fatalf("new-epoch update not applied: %d endpoints", got)
	}
}

// TestStaleEndpointRetried covers the availability-over-consistency path
// (paper §3.4.1): when the cached endpoint points at a dead worker, the
// data plane drops it and retries on a live one instead of failing the
// client.
func TestStaleEndpointRetried(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w-alive:9000", 0)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f")
	// Two endpoints: one on a worker that was never started (dead), one
	// alive. The LB may pick the dead one first; the invocation must
	// still succeed via the live endpoint.
	pushEndpoints(t, tr, dp.Addr(), "f", nil, "")
	update := proto.EndpointUpdate{Function: "f", Version: 1<<32 | 5, Endpoints: []proto.SandboxInfo{
		{ID: 1, Function: "f", Node: 1, Addr: "w-dead:9000", State: core.SandboxReady},
		{ID: 2, Function: "f", Node: 2, Addr: "w-alive:9000", State: core.SandboxReady},
	}}
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodUpdateEndpoints, update.Marshal()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := invoke(tr, dp.Addr(), "f", []byte("x")); err != nil {
			t.Fatalf("invoke %d should have failed over to the live endpoint: %v", i, err)
		}
	}
	if dp.EndpointCount("f") != 1 {
		t.Errorf("dead endpoint not dropped from cache: %d endpoints", dp.EndpointCount("f"))
	}
}

func TestSplitAddr(t *testing.T) {
	cases := []struct {
		in   string
		ip   string
		port uint16
	}{
		{"10.0.0.1:9000", "10.0.0.1", 9000},
		{"dp0:8000", "dp0", 8000},
		{"noport", "noport", 0},
		{"bad:port:x", "bad:port:x", 0},
	}
	for _, tc := range cases {
		ip, port := splitAddr(tc.in)
		if ip != tc.ip || port != tc.port {
			t.Errorf("splitAddr(%q) = %q,%d want %q,%d", tc.in, ip, port, tc.ip, tc.port)
		}
	}
}

// TestFunctionUpdateRecomputesCapacity covers the stale-capacity fix: a
// function push with a raised TargetConcurrency must recompute the
// concurrency capacity of endpoints that already exist, not just of
// endpoints created afterwards.
func TestFunctionUpdateRecomputesCapacity(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	host := startSandboxHost(t, tr, "w1:9000", 30*time.Millisecond)
	dp := testDP(t, tr)
	pushFunction(t, tr, dp.Addr(), "f") // TargetConcurrency 1
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	// Raise the limit on the already-registered function.
	scaling := core.DefaultScalingConfig()
	scaling.TargetConcurrency = 4
	list := proto.FunctionList{Functions: []core.Function{{
		Name: "f", Image: "img", Port: 80, Scaling: scaling,
	}}}
	if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodAddFunction, list.Marshal()); err != nil {
		t.Fatal(err)
	}

	fr := dp.lookup("f")
	if fr == nil {
		t.Fatal("function missing after update")
	}
	snap := fr.snap.Load()
	if len(snap.eps) != 1 || snap.eps[0].Capacity != 4 {
		t.Fatalf("existing endpoint capacity not recomputed: %+v", snap.eps)
	}

	// Behavioral check: the single sandbox now absorbs >1 concurrent
	// request instead of queueing at capacity 1.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := invoke(tr, dp.Addr(), "f", nil); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	host.mu.Lock()
	maxSeen := host.maxSeen
	host.mu.Unlock()
	if maxSeen < 2 {
		t.Errorf("max concurrent requests = %d, want >= 2 after capacity raise", maxSeen)
	}
	if maxSeen > 4 {
		t.Errorf("max concurrent requests = %d, want <= 4 (throttled)", maxSeen)
	}
}

// TestQueueTimeoutVirtualClock locks in that the cold-start queue
// timeout is driven by the injected clock: with a virtual clock, a
// 30-second timeout fires from one Advance call instead of wall time.
func TestQueueTimeoutVirtualClock(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	vclk := clock.NewVirtual(time.Unix(1000, 0))
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		Clock:          vclk,
		MetricInterval: time.Hour,
		QueueTimeout:   30 * time.Second,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")

	errCh := make(chan error, 1)
	go func() {
		_, err := invoke(tr, dp.Addr(), "f", nil)
		errCh <- err
	}()
	// Wait for the invocation to queue and register its timeout timer
	// (the metric loop holds the other pending timer).
	deadline := time.Now().Add(2 * time.Second)
	for (dp.QueueDepth("f") == 0 || vclk.PendingTimers() < 2) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dp.QueueDepth("f") != 1 || vclk.PendingTimers() < 2 {
		t.Fatalf("queue depth = %d, pending timers = %d; invocation never armed its timeout",
			dp.QueueDepth("f"), vclk.PendingTimers())
	}
	vclk.Advance(31 * time.Second)
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected queue timeout error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued invocation did not time out after clock advance")
	}
	if dp.QueueDepth("f") != 0 {
		t.Errorf("queue not cleaned after timeout: %d", dp.QueueDepth("f"))
	}
}

// TestAsyncRetryBackoffNotStranded covers the async-overflow fix: a
// retry that finds the async channel full must be re-enqueued with
// backoff and eventually settle, instead of being dropped until restart.
func TestAsyncRetryBackoffNotStranded(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   20 * time.Millisecond, // sync attempts fail fast
		AsyncRetries:   2,
	})
	// Shrink the function's queue shard so a retry colliding with one
	// accepted task overflows deterministically.
	dp.asyncShardFor("f").capa = 1
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f") // no endpoints: every attempt times out

	accept := func() {
		req := proto.InvokeRequest{Function: "f", Async: true}
		if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	accept()
	// Wait until the async loop picked task A up, then fill the queue
	// with task B so A's failed attempt overflows on re-enqueue.
	deadline := time.Now().Add(2 * time.Second)
	for dp.PendingAsync() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	accept()

	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter("async_failed").Value() >= 2 {
			if dp.metrics.Counter("async_backoff").Value() < 1 {
				t.Errorf("overflowed retry never took the backoff path")
			}
			if dp.metrics.Counter("async_requeued").Value() < 1 {
				t.Errorf("overflowed retry never re-enqueued")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("async tasks stranded: failed=%d backoff=%d requeued=%d",
		dp.metrics.Counter("async_failed").Value(),
		dp.metrics.Counter("async_backoff").Value(),
		dp.metrics.Counter("async_requeued").Value())
}
