package dataplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// TestConcurrentDataPlaneAccess hammers one data plane replica with
// parallel sync and async invocations across many functions while
// endpoints churn, capacities change, functions deregister, and slots
// release concurrently. Run with -race, it locks in the sharded invoke
// path's correctness: distinct functions take distinct runtime locks,
// warm picks go through immutable snapshots and CAS slots, and nothing
// relies on the seed's global data plane mutex for exclusion. It mirrors
// the control plane's TestConcurrentControlPlaneAccess.
func TestConcurrentDataPlaneAccess(t *testing.T) {
	const (
		numFns = 64
		iters  = 120
	)

	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 5 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
		AsyncRetries:   1,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()

	fnName := func(i int) string { return fmt.Sprintf("dp-stress-fn-%d", i) }
	fnSpec := func(name string, concurrency float64) core.Function {
		scaling := core.DefaultScalingConfig()
		scaling.TargetConcurrency = concurrency
		return core.Function{Name: name, Image: "img", Port: 80, Scaling: scaling}
	}

	call := func(method string, payload []byte) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Errors are expected under churn (e.g. an invocation racing its
		// function's deregistration or an endpoint drain); the test
		// asserts on final state and the race detector, not per-call
		// success.
		_, _ = tr.Call(ctx, "dp0:8000", method, payload)
	}

	// stableList pushes the full function cache; with/without the churn
	// function, since AddFunction semantics drop anything unlisted.
	stableFns := make([]core.Function, numFns)
	for i := range stableFns {
		stableFns[i] = fnSpec(fnName(i), float64(1+i%4))
	}
	listWithout := proto.FunctionList{Functions: stableFns}
	listWith := proto.FunctionList{Functions: append(append([]core.Function(nil), stableFns...), fnSpec("dp-stress-churn", 1))}
	call(proto.MethodAddFunction, listWith.Marshal())

	// Endpoint versions bump monotonically per function so churn never
	// deadlocks on the stale-update guard.
	epVersions := make([]atomic.Uint64, numFns+1)
	pushEps := func(fnIdx int, name string, ids ...core.SandboxID) {
		update := proto.EndpointUpdate{Function: name, Version: epVersions[fnIdx].Add(1)}
		for _, id := range ids {
			update.Endpoints = append(update.Endpoints, proto.SandboxInfo{
				ID: id, Function: name, Node: 1, Addr: "w1:9000", State: core.SandboxReady,
			})
		}
		call(proto.MethodUpdateEndpoints, update.Marshal())
	}
	for i := 0; i < numFns; i++ {
		pushEps(i, fnName(i), core.SandboxID(1000+i*4), core.SandboxID(1001+i*4))
	}

	var wg sync.WaitGroup
	run := func(fn func(g int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < iters; g++ {
				fn(g)
			}
		}()
	}

	// Sync invokers: 8 goroutines spraying across all functions.
	for g := 0; g < 8; g++ {
		g := g
		run(func(i int) {
			req := proto.InvokeRequest{Function: fnName((g*iters + i) % numFns), Payload: []byte("x")}
			call(proto.MethodInvoke, req.Marshal())
		})
	}
	// Async invokers.
	for g := 0; g < 2; g++ {
		g := g
		run(func(i int) {
			req := proto.InvokeRequest{Function: fnName((g*iters + 7*i) % numFns), Async: true, Payload: []byte("bg")}
			call(proto.MethodInvoke, req.Marshal())
		})
	}
	// Endpoint churn: grow, shrink, and empty endpoint sets.
	for g := 0; g < 4; g++ {
		g := g
		run(func(i int) {
			fn := (g*iters + i) % numFns
			base := core.SandboxID(1000 + fn*4)
			switch i % 3 {
			case 0:
				pushEps(fn, fnName(fn), base, base+1, base+2)
			case 1:
				pushEps(fn, fnName(fn), base+1)
			default:
				pushEps(fn, fnName(fn), base, base+1)
			}
		})
	}
	// Function spec churn: re-push the full list with alternating
	// TargetConcurrency so per-endpoint capacities recompute live.
	run(func(i int) {
		if i%2 == 0 {
			call(proto.MethodAddFunction, listWith.Marshal())
		} else {
			call(proto.MethodAddFunction, listWithout.Marshal())
		}
	})
	// Deregistration churn on a dedicated function that shares shards
	// with the stable ones.
	run(func(i int) {
		fn := fnSpec("dp-stress-churn", 1)
		if i%2 == 0 {
			pushEps(numFns, "dp-stress-churn", 9999)
		} else {
			call(proto.MethodRemoveFunction, core.MarshalFunction(&fn))
		}
	})
	// Invocations racing that remove/re-register churn exercise the
	// stale-runtime re-resolution in the cold-start and requeue paths.
	// Few iterations: once the churn goroutines drain, each of these can
	// legitimately block for a full queue timeout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			req := proto.InvokeRequest{Function: "dp-stress-churn", Payload: []byte("churn")}
			call(proto.MethodInvoke, req.Marshal())
		}
	}()
	// Reads concurrent with everything above.
	run(func(i int) {
		dp.QueueDepth(fnName(i % numFns))
		dp.EndpointCount(fnName(i % numFns))
		dp.PendingAsync()
	})

	wg.Wait()

	// Every stable function must still be registered and invocable once
	// a fresh endpoint set lands.
	for i := 0; i < numFns; i++ {
		pushEps(i, fnName(i), core.SandboxID(1000+i*4))
	}
	for i := 0; i < numFns; i++ {
		resp, err := invoke(tr, dp.Addr(), fnName(i), []byte("final"))
		if err != nil {
			t.Fatalf("post-churn invoke of %s: %v", fnName(i), err)
		}
		if string(resp.Body) != "done:final" {
			t.Fatalf("post-churn invoke of %s returned %q", fnName(i), resp.Body)
		}
	}
}

// TestInvokeShardsGlobalAblation locks in that InvokeShards=1 (the
// global-lock ablation, mirroring -state-shards 1) still behaves
// correctly: one shard, locked allocating picks, and working throttling.
func TestInvokeShardsGlobalAblation(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	host := startSandboxHost(t, tr, "w1:9000", 20*time.Millisecond)
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: 10 * time.Millisecond,
		QueueTimeout:   2 * time.Second,
		InvokeShards:   1,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	if len(dp.shards) != 1 {
		t.Fatalf("InvokeShards=1 built %d shards", len(dp.shards))
	}
	if dp.snapshotPicks {
		t.Fatal("InvokeShards=1 should disable lock-free snapshot picks")
	}
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1, 2}, "w1:9000")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := invoke(tr, dp.Addr(), "f", []byte("x")); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	host.mu.Lock()
	maxSeen := host.maxSeen
	host.mu.Unlock()
	if maxSeen > 2 {
		t.Errorf("max concurrent requests = %d, want <= 2 (throttled)", maxSeen)
	}
}

// TestInvokeShardDistribution sanity-checks that the FNV stripe spreads
// realistic function names across registry shards instead of piling
// onto one.
func TestInvokeShardDistribution(t *testing.T) {
	dp := New(Config{Addr: "unused"})
	seen := make(map[*invokeShard]int)
	for i := 0; i < 512; i++ {
		seen[dp.shardFor(fmt.Sprintf("function-%d", i))]++
	}
	if len(seen) < defaultInvokeShards/2 {
		t.Fatalf("512 names hit only %d of %d shards", len(seen), defaultInvokeShards)
	}
	for sh, n := range seen {
		if n > 512/4 {
			t.Fatalf("shard %p got %d of 512 names", sh, n)
		}
	}
}
