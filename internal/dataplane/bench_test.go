package dataplane

import (
	"fmt"
	"testing"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// benchRuntime builds a data plane with one function and nEps warm
// endpoints of large capacity, without starting any loops, so the
// acquire/release cycle can be measured in isolation.
func benchRuntime(b *testing.B, shards, nEps int) (*DataPlane, *functionRuntime) {
	b.Helper()
	dp := New(Config{
		ID:           1,
		Addr:         "dp-bench",
		Transport:    transport.NewInProc(),
		InvokeShards: shards,
	})
	fr := dp.getOrCreate("bench-fn")
	dp.lockRuntime(fr)
	fr.fn = core.Function{Name: "bench-fn", Image: "img"}
	for i := 0; i < nEps; i++ {
		id := core.SandboxID(i + 1)
		fr.endpoints[id] = &endpointState{
			info:     proto.SandboxInfo{ID: id, Function: "bench-fn", Addr: "w:9000"},
			capacity: 1 << 20, // never saturates: isolates the pick cost
		}
	}
	dp.rebuildSnapshotLocked(fr)
	fr.mu.Unlock()
	return dp, fr
}

// BenchmarkAblationDPInvokeWarmPick measures the warm-start pick +
// throttle + release cycle alone (no proxy hop). With -benchmem, the
// snapshot configuration must report 0 allocs/op: the whole point of the
// copy-on-write endpoint snapshots is that steady-state warm starts
// build no candidate slice. The global ablation shows the seed's
// per-pick allocation and lock serialization for contrast.
func BenchmarkAblationDPInvokeWarmPick(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"global", 1},
		{"snapshot", 0}, // default 32 shards, lock-free picks
	} {
		for _, nEps := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/eps-%d", cfg.name, nEps), func(b *testing.B) {
				dp, fr := benchRuntime(b, cfg.shards, nEps)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						st, _, ok := dp.acquireWarm(fr)
						if !ok {
							b.Fatal("no warm slot")
						}
						dp.releaseSlot(fr, st)
					}
				})
			})
		}
	}
}
