package dataplane

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

const (
	// maxStaleRetries bounds how many dead cached endpoints one
	// invocation may burn through before falling back to the cold-start
	// queue and waiting for a fresh broadcast.
	maxStaleRetries = 5
	// maxPickRetries bounds re-picks when a CAS slot acquisition loses
	// to a concurrent invocation between the snapshot pick and the
	// increment.
	maxPickRetries = 8
)

// errUnknownFunction marks invocations of functions absent from the
// local cache. For async dispatch this is almost always a
// not-yet-warmed cache (the CP's function push races recovery and lease
// drains), so the async loop retries it with backoff instead of burning
// the whole retry budget in microseconds of instant failures.
var errUnknownFunction = errors.New("data plane: unknown function")

// handleInvoke is the life of a request inside the data plane (paper §3.3):
// warm starts are proxied immediately through the concurrency throttler;
// cold starts wait in the per-function request queue until the control
// plane reports a ready sandbox.
func (dp *DataPlane) handleInvoke(payload []byte) ([]byte, error) {
	req, err := proto.UnmarshalInvokeRequest(payload)
	if err != nil {
		return nil, err
	}
	if req.Async {
		return dp.acceptAsync(req)
	}
	return dp.invokeSync(req.Function, req.Payload)
}

func (dp *DataPlane) invokeSync(function string, payload []byte) ([]byte, error) {
	arrival := dp.clk.Now()
	dp.mInvocations.Inc()

	fr := dp.lookup(function)
	if fr == nil {
		dp.metrics.Counter("invocations_unknown_function").Inc()
		return nil, fmt.Errorf("%w %q", errUnknownFunction, function)
	}
	for staleRetries := 0; staleRetries < maxStaleRetries; {
		st, info, ok := dp.acquireWarm(fr)
		if !ok {
			// No free (or trustworthy) slot: buffer as a cold start
			// and wait for the control plane to provide capacity.
			break
		}
		// Warm start: a sandbox with a free slot exists right now.
		body, err := dp.proxy(&info, function, payload)
		dp.releaseSlot(fr, st)
		if err != nil {
			if isStaleEndpointErr(err) {
				// The sandbox (or its worker) is gone but the control
				// plane's drain broadcast has not landed yet. Dirigent
				// favors availability (paper §3.4.1): drop the endpoint
				// locally and retry instead of failing the client.
				dp.dropEndpoint(fr, info.ID)
				dp.mStaleDropped.Inc()
				staleRetries++
				continue
			}
			dp.mInvokeErrors.Inc()
			return nil, err
		}
		resp := proto.InvokeResponse{
			ColdStart:           false,
			SchedulingLatencyUs: dp.clk.Since(arrival).Microseconds() - execHintUs(body),
			Body:                body,
		}
		dp.mWarmStarts.Inc()
		return resp.Marshal(), nil
	}

	// Cold start: buffer in the per-function request queue.
	p := &pending{
		payload:    payload,
		enqueuedAt: arrival,
		resultCh:   make(chan invokeResult, 1),
	}
	for {
		dp.lockRuntime(fr)
		if !fr.dead {
			break
		}
		// The runtime died under us; re-resolve so an invocation racing
		// a remove+re-register lands in the live runtime instead of
		// failing against the stale one.
		fr.mu.Unlock()
		if fr = dp.lookup(function); fr == nil {
			dp.metrics.Counter("invocations_unknown_function").Inc()
			return nil, fmt.Errorf("%w %q", errUnknownFunction, function)
		}
	}
	fr.queue = append(fr.queue, p)
	fr.queued.Add(1)
	// Re-pump under the lock: a slot may have freed between the failed
	// warm pick and the enqueue, and that release may have observed an
	// empty queue (lost-wakeup guard).
	work := dp.pumpLocked(fr)
	fr.mu.Unlock()
	dp.mColdStarts.Inc()
	dp.runDispatches(work)

	select {
	case res := <-p.resultCh:
		if res.err != nil {
			dp.mInvokeErrors.Inc()
			return nil, res.err
		}
		resp := proto.InvokeResponse{
			ColdStart:           true,
			SchedulingLatencyUs: res.dispatch.Sub(arrival).Microseconds(),
			Body:                res.body,
		}
		return resp.Marshal(), nil
	case <-dp.clk.After(dp.cfg.QueueTimeout):
		dp.abandon(function, p)
		dp.metrics.Counter("invocation_timeouts").Inc()
		return nil, fmt.Errorf("data plane: invocation of %q timed out waiting for a sandbox", function)
	case <-dp.stopCh:
		return nil, fmt.Errorf("data plane: shutting down")
	}
}

// execHintUs is a hook for latency accounting; the simulated function
// handlers report pure execution time out of band, so the data plane's
// scheduling latency for warm starts is simply proxy + throttler time.
// Returning 0 keeps the accounting conservative (scheduling latency
// includes the function execution for warm starts measured here; the
// experiment harness measures execution separately).
func execHintUs([]byte) int64 { return 0 }

// acquireWarm claims a concurrency slot on one of fr's ready endpoints,
// returning the endpoint's state (for the later release) and its
// dispatch info. In the sharded configuration this is the lock-free,
// allocation-free hot path: load the snapshot, pick, CAS the slot.
func (dp *DataPlane) acquireWarm(fr *functionRuntime) (*endpointState, proto.SandboxInfo, bool) {
	if !dp.snapshotPicks {
		return dp.acquireWarmGlobal(fr)
	}
	snap := fr.snap.Load()
	idx := dp.tryAcquireSnapshot(fr.name, snap)
	if idx < 0 {
		return nil, proto.SandboxInfo{}, false
	}
	return snap.states[idx], snap.infos[idx], true
}

// tryAcquireSnapshot picks an endpoint from snap and CAS-claims one of
// its concurrency slots, re-picking when it loses the slot to a
// concurrent invocation between the pick and the CAS. Returns the chosen
// index, or -1 when the snapshot is empty, saturated, or too contended.
func (dp *DataPlane) tryAcquireSnapshot(name string, snap *endpointSnapshot) int {
	if len(snap.eps) == 0 {
		return -1
	}
	for attempt := 0; attempt < maxPickRetries; attempt++ {
		idx := dp.pickIndex(name, dp.invokeSeq.Add(1), snap)
		if idx < 0 {
			return -1
		}
		if snap.eps[idx].TryAcquire() {
			return idx
		}
		dp.mPickRaces.Inc()
	}
	return -1
}

// acquireWarmGlobal is the InvokeShards=1 ablation: the seed's design,
// with the pick serialized under the (global) runtime mutex and a fresh
// candidate slice built per invocation.
func (dp *DataPlane) acquireWarmGlobal(fr *functionRuntime) (*endpointState, proto.SandboxInfo, bool) {
	dp.lockRuntime(fr)
	defer fr.mu.Unlock()
	snap := fr.snap.Load()
	idx := dp.tryAcquireSnapshot(fr.name, snap)
	if idx < 0 {
		return nil, proto.SandboxInfo{}, false
	}
	return snap.states[idx], snap.infos[idx], true
}

// pickIndex runs the load-balancing policy over an endpoint snapshot and
// returns the chosen index, or -1 when every endpoint is saturated.
func (dp *DataPlane) pickIndex(function string, key uint64, snap *endpointSnapshot) int {
	if dp.snapPolicy != nil && dp.snapshotPicks {
		return dp.snapPolicy.PickIndex(function, key, snap.eps)
	}
	return dp.pickAllocating(function, key, snap)
}

// pickAllocating adapts snapshot picks to policies that only implement
// Pick (e.g. CH-RLU): it copies the snapshot into a fresh []Endpoint —
// one allocation per pick, which is also exactly what the global-lock
// ablation is meant to measure.
func (dp *DataPlane) pickAllocating(function string, key uint64, snap *endpointSnapshot) int {
	eps := make([]loadbalancer.Endpoint, len(snap.eps))
	for i := range snap.eps {
		se := &snap.eps[i]
		eps[i] = loadbalancer.Endpoint{
			SandboxID: se.SandboxID,
			Addr:      se.Addr,
			InFlight:  int(se.InFlight.Load()),
			Capacity:  se.Capacity,
		}
	}
	chosen := dp.cfg.Balancer.Pick(function, key, eps)
	if chosen == nil {
		return -1
	}
	for i := range snap.eps {
		if snap.eps[i].SandboxID == chosen.SandboxID {
			return i
		}
	}
	return -1
}

// proxy forwards the invocation to the worker hosting the sandbox; this is
// the HTTP/2 reverse-proxy hop in Figure 6.
func (dp *DataPlane) proxy(info *proto.SandboxInfo, function string, payload []byte) ([]byte, error) {
	req := proto.InvokeSandboxRequest{
		SandboxID: info.ID,
		Function:  function,
		Payload:   payload,
	}
	ctx, cancel := context.WithTimeout(context.Background(), dp.cfg.QueueTimeout)
	defer cancel()
	return dp.cfg.Transport.Call(ctx, info.Addr, proto.MethodInvokeSandbox, req.Marshal())
}

// releaseSlot frees a concurrency slot and, only when cold starts are
// actually waiting, pumps the queue. The warm steady state is a single
// atomic decrement plus one atomic load.
func (dp *DataPlane) releaseSlot(fr *functionRuntime, st *endpointState) {
	st.inFlight.Add(-1)
	// Seq-cst atomics make this safe against a concurrent enqueue: the
	// enqueuer increments queued before re-checking slots, we decrement
	// the slot before checking queued, so at least one side sees the
	// other (no lost wakeup). The ablation skips the shortcut: the seed
	// locked and pumped on every release, so the global-lock baseline
	// must too.
	if dp.snapshotPicks && fr.queued.Load() == 0 {
		return
	}
	dp.pumpRuntime(fr)
}

// pumpRuntime locks fr and dispatches whatever queued invocations its
// current endpoint snapshot can absorb.
func (dp *DataPlane) pumpRuntime(fr *functionRuntime) {
	dp.lockRuntime(fr)
	work := dp.pumpLocked(fr)
	fr.mu.Unlock()
	dp.runDispatches(work)
}

type dispatchWork struct {
	fr   *functionRuntime
	info proto.SandboxInfo
	st   *endpointState
	p    *pending
}

// pumpLocked matches queued invocations with free endpoint slots.
// Callers hold fr.mu; the returned work must be executed off-lock, which
// is why each item carries the endpoint info snapshot taken here
// (endpoint updates may republish concurrently).
func (dp *DataPlane) pumpLocked(fr *functionRuntime) []dispatchWork {
	var work []dispatchWork
	for len(fr.queue) > 0 {
		snap := fr.snap.Load()
		idx := dp.tryAcquireSnapshot(fr.name, snap)
		if idx < 0 {
			break
		}
		p := fr.queue[0]
		fr.queue = fr.queue[1:]
		fr.queued.Add(-1)
		work = append(work, dispatchWork{fr: fr, info: snap.infos[idx], st: snap.states[idx], p: p})
	}
	return work
}

func (dp *DataPlane) runDispatches(work []dispatchWork) {
	for _, d := range work {
		go dp.dispatch(d)
	}
}

// dispatch executes one dequeued cold-start invocation. If the chosen
// endpoint turns out to be stale (sandbox or worker gone before the drain
// broadcast arrived), the endpoint is dropped and the invocation requeued
// rather than failed.
func (dp *DataPlane) dispatch(d dispatchWork) {
	dispatchedAt := dp.clk.Now()
	body, err := dp.proxy(&d.info, d.fr.name, d.p.payload)
	if err != nil && isStaleEndpointErr(err) {
		dp.dropEndpoint(d.fr, d.info.ID)
		dp.mStaleDropped.Inc()
		// requeue may land the pending in a re-registered successor
		// runtime; pump the runtime that actually holds it, after the
		// slot release so the pump sees the freed capacity.
		target := dp.requeue(d.fr, d.p)
		d.st.inFlight.Add(-1)
		if target != nil {
			dp.pumpRuntime(target)
		}
		return
	}
	dp.releaseSlot(d.fr, d.st)
	d.p.resultCh <- invokeResult{
		body:      body,
		err:       err,
		dispatch:  dispatchedAt,
		coldStart: true,
	}
}

// isStaleEndpointErr reports whether a proxy failure indicates the target
// sandbox no longer exists (as opposed to an application error from the
// function itself).
func isStaleEndpointErr(err error) bool {
	if errors.Is(err, transport.ErrUnreachable) {
		return true
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, "no such sandbox") ||
			strings.Contains(re.Msg, "address unreachable")
	}
	return false
}

// dropEndpoint removes a stale endpoint from the local cache and
// republishes the snapshot; the next control-plane broadcast
// re-synchronizes the authoritative view.
func (dp *DataPlane) dropEndpoint(fr *functionRuntime, id core.SandboxID) {
	dp.lockRuntime(fr)
	if _, ok := fr.endpoints[id]; ok {
		delete(fr.endpoints, id)
		dp.rebuildSnapshotLocked(fr)
	}
	fr.mu.Unlock()
}

// requeue puts a pending invocation back at the head of the function's
// queue so a subsequent endpoint can absorb it, re-resolving the runtime
// if it was deregistered (and possibly re-registered) in the meantime.
// It returns the runtime that holds the pending, or nil when the
// function is gone and the pending was failed.
func (dp *DataPlane) requeue(fr *functionRuntime, p *pending) *functionRuntime {
	name := fr.name
	for {
		dp.lockRuntime(fr)
		if !fr.dead {
			break
		}
		fr.mu.Unlock()
		if fr = dp.lookup(name); fr == nil {
			p.resultCh <- invokeResult{err: deregisteredErr(name)}
			return nil
		}
	}
	defer fr.mu.Unlock()
	fr.queue = append([]*pending{p}, fr.queue...)
	fr.queued.Add(1)
	return fr
}

// abandon removes a timed-out pending invocation from the queue. It
// resolves by name so it finds the pending even if requeue migrated it
// into a re-registered successor runtime.
func (dp *DataPlane) abandon(function string, p *pending) {
	fr := dp.lookup(function)
	if fr == nil {
		return
	}
	dp.lockRuntime(fr)
	defer fr.mu.Unlock()
	for i, q := range fr.queue {
		if q == p {
			fr.queue = append(fr.queue[:i], fr.queue[i+1:]...)
			fr.queued.Add(-1)
			return
		}
	}
}

// acceptAsync durably queues an asynchronous invocation on its
// function's queue shard and acknowledges immediately; the shard's
// dispatch loop executes it with retries (at-least-once, paper §3.4.2).
func (dp *DataPlane) acceptAsync(req *proto.InvokeRequest) ([]byte, error) {
	task := asyncTask{function: req.Function, payload: req.Payload}
	sh := dp.asyncShardFor(req.Function)
	// Persist before acknowledging: once the client sees "accepted", the
	// invocation survives a data plane crash (paper §3.4.2).
	if err := dp.persistAsync(sh, &task); err != nil {
		dp.metrics.Counter("async_rejected").Inc()
		return nil, fmt.Errorf("data plane: persist async invocation: %w", err)
	}
	if err := sh.tryAdmit(task, true); err != nil {
		dp.settleAsync(&task)
		dp.metrics.Counter("async_rejected").Inc()
		return nil, err
	}
	dp.metrics.Counter("async_accepted").Inc()
	resp := proto.InvokeResponse{Body: []byte("accepted")}
	return resp.Marshal(), nil
}

// asyncLoop drains one queue shard. Each shard runs its own loop, so a
// slow function (every dispatch here is a full synchronous invocation,
// retries included) only stalls the tasks hashed to its shard.
func (dp *DataPlane) asyncLoop(sh *asyncShard) {
	defer dp.wg.Done()
	for {
		task, ok := sh.next()
		if !ok {
			return
		}
		// A leased task is re-validated at dispatch: a lease revoked (or
		// re-granted elsewhere) while the task sat queued must not
		// execute here — its durable record belongs to a newer epoch.
		if task.leased && !dp.leaseCheck(&task) {
			dp.forgetLeasedKey(task.storeHash, task.storeKey)
			dp.metrics.Counter("async_lease_dropped").Inc()
			continue
		}
		if _, err := dp.invokeSync(task.function, task.payload); err != nil {
			task.attempt++
			if task.attempt <= dp.cfg.AsyncRetries {
				dp.metrics.Counter("async_retries").Inc()
				// Unknown function fails in microseconds (the CP's
				// function push races recovery and lease drains), so an
				// instant retry would burn the whole budget before the
				// cache warms: take the backoff path. Overflowed
				// instant retries back off too rather than strand.
				if errors.Is(err, errUnknownFunction) || sh.tryAdmit(task, false) != nil {
					dp.metrics.Counter("async_backoff").Inc()
					dp.wg.Add(1)
					go dp.requeueAsync(sh, task)
				}
			} else {
				dp.settleAsync(&task)
				dp.metrics.Counter("async_failed").Inc()
			}
		} else {
			dp.settleAsync(&task)
			dp.metrics.Counter("async_completed").Inc()
		}
	}
}

// requeueAsync retries handing an overflowed async retry back to its
// shard with exponential backoff, keeping at-least-once semantics
// without a restart. The durable record stays in place until the task
// settles, so a crash during the backoff still recovers it.
func (dp *DataPlane) requeueAsync(sh *asyncShard, task asyncTask) {
	defer dp.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		select {
		case <-dp.stopCh:
			return
		case <-dp.clk.After(backoff):
		}
		if sh.tryAdmit(task, false) == nil {
			dp.metrics.Counter("async_requeued").Inc()
			return
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// heartbeatLoop announces this replica's liveness to the control plane on
// the injected clock. When heartbeats stop, the control plane prunes the
// replica from its broadcast fan-out set and from the live set the front
// end polls; when they resume, it re-admits the replica with a full cache
// re-warm.
func (dp *DataPlane) heartbeatLoop() {
	defer dp.wg.Done()
	for {
		select {
		case <-dp.stopCh:
			return
		case <-dp.clk.After(dp.cfg.HeartbeatInterval):
			dp.sendHeartbeat()
		}
	}
}

func (dp *DataPlane) sendHeartbeat() {
	hb := proto.DataPlaneHeartbeat{DataPlane: dp.identity()}
	ctx, cancel := context.WithTimeout(context.Background(), dp.cfg.HeartbeatInterval*4)
	defer cancel()
	// Best effort: a missed heartbeat is exactly what the CP's health
	// monitor is designed to tolerate and detect. The ack carries the
	// replica's current queue epoch — after a prune-and-revive it is the
	// fresh revival epoch that out-fences any lease on our records.
	resp, err := dp.cp.Call(ctx, proto.MethodDataPlaneHeartbeat, hb.Marshal())
	if err == nil {
		dp.adoptEpochAck(resp)
	}
}

// metricLoop periodically reports per-function scaling metrics to the
// control plane (paper Table 2). The period is driven by the injected
// clock so simulated-time tests don't burn wall time.
func (dp *DataPlane) metricLoop() {
	defer dp.wg.Done()
	for {
		select {
		case <-dp.stopCh:
			return
		case <-dp.clk.After(dp.cfg.MetricInterval):
			dp.reportMetrics()
		}
	}
}

// reportMetrics collects in-flight plus queued requests per function.
// It reads only published snapshots and atomic counters — a report never
// stalls the invoke path.
func (dp *DataPlane) reportMetrics() {
	now := dp.clk.Now()
	report := proto.ScalingMetricReport{DataPlane: dp.cfg.ID}
	for _, sh := range dp.shards {
		for name, fr := range sh.fns.load() {
			snap := fr.snap.Load()
			inFlight := 0
			for i := range snap.eps {
				inFlight += int(snap.eps[i].InFlight.Load())
			}
			report.Metrics = append(report.Metrics, core.ScalingMetric{
				Function:   name,
				InFlight:   inFlight,
				QueueDepth: int(fr.queued.Load()),
				At:         now,
			})
		}
	}
	if len(report.Metrics) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), dp.cfg.MetricInterval*4)
	defer cancel()
	// Best effort: a missed report only delays autoscaling by one period.
	_, _ = dp.cp.Call(ctx, proto.MethodScalingMetric, report.Marshal())
}

// QueueDepth reports the number of buffered invocations for a function.
func (dp *DataPlane) QueueDepth(function string) int {
	if fr := dp.lookup(function); fr != nil {
		return int(fr.queued.Load())
	}
	return 0
}

// EndpointCount reports the number of cached ready endpoints for a
// function.
func (dp *DataPlane) EndpointCount(function string) int {
	if fr := dp.lookup(function); fr != nil {
		return len(fr.snap.Load().eps)
	}
	return 0
}
