package dataplane

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/proto"
	"dirigent/internal/transport"
)

// handleInvoke is the life of a request inside the data plane (paper §3.3):
// warm starts are proxied immediately through the concurrency throttler;
// cold starts wait in the per-function request queue until the control
// plane reports a ready sandbox.
func (dp *DataPlane) handleInvoke(payload []byte) ([]byte, error) {
	req, err := proto.UnmarshalInvokeRequest(payload)
	if err != nil {
		return nil, err
	}
	if req.Async {
		return dp.acceptAsync(req)
	}
	return dp.invokeSync(req.Function, req.Payload)
}

func (dp *DataPlane) invokeSync(function string, payload []byte) ([]byte, error) {
	arrival := dp.clk.Now()
	dp.metrics.Counter("invocations").Inc()

	staleRetries := 0
	for {
		dp.mu.Lock()
		fr, ok := dp.functions[function]
		if !ok {
			dp.mu.Unlock()
			dp.metrics.Counter("invocations_unknown_function").Inc()
			return nil, fmt.Errorf("data plane: unknown function %q", function)
		}
		dp.invokeSeq++
		key := dp.invokeSeq
		var ep *endpointState
		if staleRetries < 5 {
			ep = dp.pickLocked(fr, key)
		}
		if ep == nil {
			// No free (or trustworthy) slot: buffer as a cold start and
			// wait for the control plane to provide capacity.
			break
		}
		// Warm start: a sandbox with a free slot exists right now.
		ep.inFlight++
		info := ep.info
		dp.mu.Unlock()
		body, err := dp.proxy(&info, function, payload)
		dp.releaseSlot(function, info.ID)
		if err != nil {
			if isStaleEndpointErr(err) {
				// The sandbox (or its worker) is gone but the control
				// plane's drain broadcast has not landed yet. Dirigent
				// favors availability (paper §3.4.1): drop the endpoint
				// locally and retry instead of failing the client.
				dp.dropEndpoint(function, info.ID)
				dp.metrics.Counter("stale_endpoints_dropped").Inc()
				staleRetries++
				continue
			}
			dp.metrics.Counter("invocation_errors").Inc()
			return nil, err
		}
		resp := proto.InvokeResponse{
			ColdStart:           false,
			SchedulingLatencyUs: dp.clk.Since(arrival).Microseconds() - execHintUs(body),
			Body:                body,
		}
		dp.metrics.Counter("warm_starts").Inc()
		return resp.Marshal(), nil
	}

	// Cold start: buffer in the per-function request queue. (dp.mu held.)
	fr := dp.functions[function]
	p := &pending{
		payload:    payload,
		enqueuedAt: arrival,
		resultCh:   make(chan invokeResult, 1),
	}
	fr.queue = append(fr.queue, p)
	dp.metrics.Counter("cold_starts").Inc()
	dp.mu.Unlock()

	select {
	case res := <-p.resultCh:
		if res.err != nil {
			dp.metrics.Counter("invocation_errors").Inc()
			return nil, res.err
		}
		resp := proto.InvokeResponse{
			ColdStart:           true,
			SchedulingLatencyUs: res.dispatch.Sub(arrival).Microseconds(),
			Body:                res.body,
		}
		return resp.Marshal(), nil
	case <-time.After(dp.cfg.QueueTimeout):
		dp.abandon(function, p)
		dp.metrics.Counter("invocation_timeouts").Inc()
		return nil, fmt.Errorf("data plane: invocation of %q timed out waiting for a sandbox", function)
	case <-dp.stopCh:
		return nil, fmt.Errorf("data plane: shutting down")
	}
}

// execHintUs is a hook for latency accounting; the simulated function
// handlers report pure execution time out of band, so the data plane's
// scheduling latency for warm starts is simply proxy + throttler time.
// Returning 0 keeps the accounting conservative (scheduling latency
// includes the function execution for warm starts measured here; the
// experiment harness measures execution separately).
func execHintUs([]byte) int64 { return 0 }

// pickLocked runs the load-balancing policy over the function's endpoint
// snapshot. Callers hold dp.mu.
func (dp *DataPlane) pickLocked(fr *functionRuntime, key uint64) *endpointState {
	if len(fr.endpoints) == 0 {
		return nil
	}
	eps := make([]loadbalancer.Endpoint, 0, len(fr.endpoints))
	for _, ep := range fr.endpoints {
		eps = append(eps, loadbalancer.Endpoint{
			SandboxID: ep.info.ID,
			Addr:      ep.info.Addr,
			InFlight:  ep.inFlight,
			Capacity:  ep.capacity,
		})
	}
	chosen := dp.cfg.Balancer.Pick(fr.fn.Name, key, eps)
	if chosen == nil {
		return nil
	}
	return fr.endpoints[chosen.SandboxID]
}

// proxy forwards the invocation to the worker hosting the sandbox; this is
// the HTTP/2 reverse-proxy hop in Figure 6.
func (dp *DataPlane) proxy(info *proto.SandboxInfo, function string, payload []byte) ([]byte, error) {
	req := proto.InvokeSandboxRequest{
		SandboxID: info.ID,
		Function:  function,
		Payload:   payload,
	}
	ctx, cancel := context.WithTimeout(context.Background(), dp.cfg.QueueTimeout)
	defer cancel()
	return dp.cfg.Transport.Call(ctx, info.Addr, proto.MethodInvokeSandbox, req.Marshal())
}

// releaseSlot frees a concurrency slot and pumps the queue.
func (dp *DataPlane) releaseSlot(function string, id core.SandboxID) {
	dp.mu.Lock()
	fr, ok := dp.functions[function]
	if !ok {
		dp.mu.Unlock()
		return
	}
	if ep, ok := fr.endpoints[id]; ok && ep.inFlight > 0 {
		ep.inFlight--
	}
	dispatches := dp.pumpLocked(fr)
	dp.mu.Unlock()
	for _, d := range dispatches {
		go dp.dispatch(d.function, d.info, d.p)
	}
}

type dispatchWork struct {
	function string
	info     proto.SandboxInfo
	p        *pending
}

// pumpLocked matches queued invocations with free endpoint slots.
// Callers hold dp.mu; the returned work must be executed off-lock, which
// is why each item carries a snapshot of the endpoint info taken under
// the lock (endpoint updates may rewrite it concurrently).
func (dp *DataPlane) pumpLocked(fr *functionRuntime) []dispatchWork {
	var work []dispatchWork
	for len(fr.queue) > 0 {
		dp.invokeSeq++
		ep := dp.pickLocked(fr, dp.invokeSeq)
		if ep == nil {
			break
		}
		p := fr.queue[0]
		fr.queue = fr.queue[1:]
		ep.inFlight++
		work = append(work, dispatchWork{function: fr.fn.Name, info: ep.info, p: p})
	}
	return work
}

// dispatch executes one dequeued cold-start invocation. If the chosen
// endpoint turns out to be stale (sandbox or worker gone before the drain
// broadcast arrived), the endpoint is dropped and the invocation requeued
// rather than failed.
func (dp *DataPlane) dispatch(function string, info proto.SandboxInfo, p *pending) {
	dispatchedAt := dp.clk.Now()
	body, err := dp.proxy(&info, function, p.payload)
	if err != nil && isStaleEndpointErr(err) {
		dp.dropEndpoint(function, info.ID)
		dp.metrics.Counter("stale_endpoints_dropped").Inc()
		dp.requeue(function, p)
		dp.releaseSlot(function, info.ID)
		return
	}
	dp.releaseSlot(function, info.ID)
	p.resultCh <- invokeResult{
		body:      body,
		err:       err,
		dispatch:  dispatchedAt,
		coldStart: true,
	}
}

// isStaleEndpointErr reports whether a proxy failure indicates the target
// sandbox no longer exists (as opposed to an application error from the
// function itself).
func isStaleEndpointErr(err error) bool {
	if errors.Is(err, transport.ErrUnreachable) {
		return true
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, "no such sandbox") ||
			strings.Contains(re.Msg, "address unreachable")
	}
	return false
}

// dropEndpoint removes a stale endpoint from the local cache; the next
// control-plane broadcast re-synchronizes the authoritative view.
func (dp *DataPlane) dropEndpoint(function string, id core.SandboxID) {
	dp.mu.Lock()
	if fr, ok := dp.functions[function]; ok {
		delete(fr.endpoints, id)
	}
	dp.mu.Unlock()
}

// requeue puts a pending invocation back at the head of the function's
// queue so a subsequent endpoint can absorb it.
func (dp *DataPlane) requeue(function string, p *pending) {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	fr, ok := dp.functions[function]
	if !ok {
		p.resultCh <- invokeResult{err: fmt.Errorf("function %q deregistered", function)}
		return
	}
	fr.queue = append([]*pending{p}, fr.queue...)
}

// abandon removes a timed-out pending invocation from the queue.
func (dp *DataPlane) abandon(function string, p *pending) {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	fr, ok := dp.functions[function]
	if !ok {
		return
	}
	for i, q := range fr.queue {
		if q == p {
			fr.queue = append(fr.queue[:i], fr.queue[i+1:]...)
			return
		}
	}
}

// acceptAsync durably queues an asynchronous invocation and acknowledges
// immediately; the async loop executes it with retries (at-least-once,
// paper §3.4.2).
func (dp *DataPlane) acceptAsync(req *proto.InvokeRequest) ([]byte, error) {
	task := asyncTask{function: req.Function, payload: req.Payload}
	// Persist before acknowledging: once the client sees "accepted", the
	// invocation survives a data plane crash (paper §3.4.2).
	key, err := dp.persistAsync(task)
	if err != nil {
		dp.metrics.Counter("async_rejected").Inc()
		return nil, fmt.Errorf("data plane: persist async invocation: %w", err)
	}
	task.storeKey = key
	select {
	case dp.asyncCh <- task:
		dp.metrics.Counter("async_accepted").Inc()
		resp := proto.InvokeResponse{Body: []byte("accepted")}
		return resp.Marshal(), nil
	default:
		dp.settleAsync(key)
		dp.metrics.Counter("async_rejected").Inc()
		return nil, fmt.Errorf("data plane: async queue full")
	}
}

func (dp *DataPlane) asyncLoop() {
	defer dp.wg.Done()
	for {
		select {
		case <-dp.stopCh:
			return
		case task := <-dp.asyncCh:
			if _, err := dp.invokeSync(task.function, task.payload); err != nil {
				task.attempt++
				if task.attempt <= dp.cfg.AsyncRetries {
					dp.metrics.Counter("async_retries").Inc()
					select {
					case dp.asyncCh <- task:
					default:
						// Queue overflow: keep the durable record so a
						// restart retries the task.
						dp.metrics.Counter("async_dropped").Inc()
					}
				} else {
					dp.settleAsync(task.storeKey)
					dp.metrics.Counter("async_failed").Inc()
				}
			} else {
				dp.settleAsync(task.storeKey)
				dp.metrics.Counter("async_completed").Inc()
			}
		}
	}
}

// metricLoop periodically reports per-function scaling metrics (in-flight
// plus queued requests) to the control plane (paper Table 2).
func (dp *DataPlane) metricLoop() {
	defer dp.wg.Done()
	ticker := time.NewTicker(dp.cfg.MetricInterval)
	defer ticker.Stop()
	for {
		select {
		case <-dp.stopCh:
			return
		case <-ticker.C:
			dp.reportMetrics()
		}
	}
}

func (dp *DataPlane) reportMetrics() {
	now := dp.clk.Now()
	report := proto.ScalingMetricReport{DataPlane: dp.cfg.ID}
	dp.mu.Lock()
	for name, fr := range dp.functions {
		inFlight := 0
		for _, ep := range fr.endpoints {
			inFlight += ep.inFlight
		}
		report.Metrics = append(report.Metrics, core.ScalingMetric{
			Function:   name,
			InFlight:   inFlight,
			QueueDepth: len(fr.queue),
			At:         now,
		})
	}
	dp.mu.Unlock()
	if len(report.Metrics) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), dp.cfg.MetricInterval*4)
	defer cancel()
	// Best effort: a missed report only delays autoscaling by one period.
	_, _ = dp.cp.Call(ctx, proto.MethodScalingMetric, report.Marshal())
}

// QueueDepth reports the number of buffered invocations for a function.
func (dp *DataPlane) QueueDepth(function string) int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if fr, ok := dp.functions[function]; ok {
		return len(fr.queue)
	}
	return 0
}

// EndpointCount reports the number of cached ready endpoints for a
// function.
func (dp *DataPlane) EndpointCount(function string) int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if fr, ok := dp.functions[function]; ok {
		return len(fr.endpoints)
	}
	return 0
}
