package dataplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirigent/internal/core"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/transport"
)

// seedOwnedTasks persists n records for function fn owned by owner into
// hash, as if that replica had accepted them and crashed.
func seedOwnedTasks(t *testing.T, db *store.Store, hash string, owner core.DataPlaneID, fn string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := core.AsyncTaskKey(owner, uint64(i+1))
		task := asyncTask{function: fn, payload: []byte{byte(i)}}
		if err := db.HSet(hash, key, marshalAsyncTask(task)); err != nil {
			t.Fatal(err)
		}
	}
}

func grantLease(t *testing.T, tr *transport.InProc, dpAddr string, owner core.DataPlaneID, epoch uint64, hashes []string) {
	t.Helper()
	g := proto.AsyncLease{Owner: owner, Epoch: epoch, Hashes: hashes}
	if _, err := tr.Call(context.Background(), dpAddr, proto.MethodAsyncLeaseGrant, g.Marshal()); err != nil {
		t.Fatal(err)
	}
}

func revokeLease(t *testing.T, tr *transport.InProc, dpAddr string, owner core.DataPlaneID, epoch uint64) {
	t.Helper()
	r := proto.AsyncLeaseRevoke{Owner: owner, Epoch: epoch}
	if _, err := tr.Call(context.Background(), dpAddr, proto.MethodAsyncLeaseRevoke, r.Marshal()); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncLeaseDrainsDeadOwnersRecords: a granted lease drains another
// replica's records through the ordinary dispatch loops and settles them
// under the lease epoch, emptying the shared store.
func TestAsyncLeaseDrainsDeadOwnersRecords(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	db := store.NewMemory()
	seedOwnedTasks(t, db, asyncQueueHash, 2, "f", 5)

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   2 * time.Second,
		AsyncRetries:   10,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	// Replica 1 recovers nothing: the records belong to replica 2.
	if got := dp.metrics.Counter("async_recovered").Value(); got != 0 {
		t.Fatalf("recovered foreign records: %d", got)
	}
	grantLease(t, tr, dp.Addr(), 2, 1, []string{asyncQueueHash})
	if dp.HeldLeases() != 1 {
		t.Fatalf("HeldLeases = %d, want 1", dp.HeldLeases())
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if db.HLen(asyncQueueHash) == 0 && dp.metrics.Counter("async_completed").Value() >= 5 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("lease not drained: backlog=%d drained=%d completed=%d",
		db.HLen(asyncQueueHash),
		dp.metrics.Counter("async_lease_drained").Value(),
		dp.metrics.Counter("async_completed").Value())
}

// TestAsyncLeaseRevivalDropsQueuedTasks: the owner revives (fence bumped
// to its revival epoch, lease revoked) while leased tasks sit queued —
// dispatch must drop them without executing, leaving every record
// durable for the owner.
func TestAsyncLeaseRevivalDropsQueuedTasks(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	seedOwnedTasks(t, db, asyncQueueHash, 2, "f", 4)

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   30 * time.Second, // dispatch blocks: no endpoints
		AsyncRetries:   10,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f") // known function, no endpoints

	grantLease(t, tr, dp.Addr(), 2, 1, []string{asyncQueueHash})
	waitCounter(t, dp, "async_lease_drained", 4)
	// Wait for the dispatch loop to pop the first leased task (it parks
	// in the cold-start queue: no endpoints yet), so exactly one task is
	// in flight and three are queued when the revival lands.
	sh := dp.asyncShardFor("f")
	deadline := time.Now().Add(5 * time.Second)
	for sh.pending() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sh.pending(); got != 3 {
		t.Fatalf("queued leased tasks = %d, want 3", got)
	}

	// Owner revival: the CP mints epoch 2; the owner adopts it (bumping
	// its fence) and the CP revokes the lease.
	if err := db.HBumpU64(asyncFenceHash, asyncFenceField(2), 2); err != nil {
		t.Fatal(err)
	}
	revokeLease(t, tr, dp.Addr(), 2, 2)
	if dp.HeldLeases() != 0 {
		t.Fatalf("lease survived revoke")
	}
	// Unblock dispatch. The three queued tasks must be dropped at the
	// lease check without executing; the in-flight one may execute
	// (at-least-once) but its stale-epoch settle is fenced. Either way
	// every record stays durable for the revived owner.
	startSandboxHost(t, tr, "w1:9000", 0)
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")
	waitCounter(t, dp, "async_lease_dropped", 3)
	waitCounter(t, dp, "async_settle_fenced", 1)
	if got := db.HLen(asyncQueueHash); got != 4 {
		t.Fatalf("records deleted despite revocation: %d left, want 4", got)
	}
}

// TestAsyncLeaseSettleAfterRevokeFenced: a leased task already executing
// when the owner revives settles at the stale lease epoch; the store
// fence must reject the delete and the lessee must abandon the lease.
func TestAsyncLeaseSettleAfterRevokeFenced(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	key := core.AsyncTaskKey(2, 1)
	db.HSet(asyncQueueHash, key, marshalAsyncTask(asyncTask{function: "f"}))

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   time.Second,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()

	grantLease(t, tr, dp.Addr(), 2, 1, nil) // lease installed, nothing to drain
	// Revival epoch 2 out-fences the lease before the in-flight task's
	// settle lands.
	if err := db.HBumpU64(asyncFenceHash, asyncFenceField(2), 2); err != nil {
		t.Fatal(err)
	}
	task := asyncTask{
		function: "f", storeHash: asyncQueueHash, storeKey: key,
		leased: true, leaseOwner: 2, leaseEpoch: 1,
	}
	dp.settleAsync(&task)
	if _, ok := db.HGet(asyncQueueHash, key); !ok {
		t.Fatal("stale-epoch settle deleted the record")
	}
	if got := dp.metrics.Counter("async_settle_fenced").Value(); got != 1 {
		t.Fatalf("async_settle_fenced = %d, want 1", got)
	}
	if dp.HeldLeases() != 0 {
		t.Fatal("fenced settle did not abandon the lease")
	}
}

// TestAsyncOwnerParksFencedSettleUntilRevivalEpoch: a zombie owner whose
// records were leased away settles at its stale epoch — the settle parks
// (no delete, no re-execution) and lands once the owner adopts its
// revival epoch.
func TestAsyncOwnerParksFencedSettleUntilRevivalEpoch(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	key := core.AsyncTaskKey(1, 1)
	db.HSet(asyncQueueHash, key, marshalAsyncTask(asyncTask{function: "f"}))

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   time.Second,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	waitCounter(t, dp, "async_recovered", 1)

	// A lease on this replica's own records was granted at epoch 5 while
	// its heartbeats were delayed.
	if err := db.HBumpU64(asyncFenceHash, asyncFenceField(1), 5); err != nil {
		t.Fatal(err)
	}
	task := asyncTask{function: "f", storeHash: asyncQueueHash, storeKey: key}
	dp.settleAsync(&task)
	if _, ok := db.HGet(asyncQueueHash, key); !ok {
		t.Fatal("fenced own settle deleted the record")
	}
	if got := dp.metrics.Counter("async_settle_parked").Value(); got != 1 {
		t.Fatalf("async_settle_parked = %d, want 1", got)
	}
	// Revival: the CP assigns epoch 6; adopting it bumps the fence and
	// retries the parked settle.
	dp.adoptEpoch(6)
	if _, ok := db.HGet(asyncQueueHash, key); ok {
		t.Fatal("parked settle not retried after epoch adoption")
	}
	if got := db.HGetU64(asyncFenceHash, asyncFenceField(1)); got != 6 {
		t.Fatalf("own fence = %d, want 6", got)
	}
}

// TestAsyncQuotaRejectsClientAccepts: with AsyncFnQuota set, a function
// already holding quota queued tasks has further client accepts rejected
// (and their durable records settled), while other functions still admit.
func TestAsyncQuotaRejectsClientAccepts(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	db := store.NewMemory()
	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   30 * time.Second, // dispatch parks on the first task
		AsyncRetries:   1_000_000,
		AsyncStore:     db,
		AsyncShards:    1,
		AsyncFnQuota:   2,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	pushFunction(t, tr, dp.Addr(), "g")

	accept := func(fn string) error {
		req := proto.InvokeRequest{Function: fn, Async: true}
		_, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal())
		return err
	}
	// First task is popped by the dispatch loop and parks in the
	// cold-start queue; wait for the pop so quota counts only queued
	// tasks deterministically.
	if err := accept("f"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for dp.asyncShards[0].pending() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := accept("f"); err != nil {
		t.Fatal(err)
	}
	if err := accept("f"); err != nil {
		t.Fatal(err)
	}
	err := accept("f")
	if err == nil {
		t.Fatal("fourth accept admitted past the quota")
	}
	if got := dp.metrics.Counter("async_rejected").Value(); got != 1 {
		t.Fatalf("async_rejected = %d, want 1", got)
	}
	// The rejected task's durable record was settled: only the three
	// admitted records remain.
	if got := db.HLen(asyncQueueHash); got != 3 {
		t.Fatalf("store holds %d records, want 3", got)
	}
	// Another function is not throttled by f's quota.
	if err := accept("g"); err != nil {
		t.Fatalf("co-resident function throttled: %v", err)
	}
}

// TestAsyncDRRFairDispatch: a hot function's burst must not head-of-line
// block a co-resident function — with DRR, the cold function's tasks
// dispatch after at most one quantum of the hot function's, not after
// the whole burst.
func TestAsyncDRRFairDispatch(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")

	var mu sync.Mutex
	var order []byte
	ln, err := tr.Listen("w1:9000", func(method string, payload []byte) ([]byte, error) {
		req, err := proto.UnmarshalInvokeSandboxRequest(payload)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		order = append(order, req.Payload[0])
		mu.Unlock()
		return req.Payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   30 * time.Second,
		AsyncShards:    1, // both functions share the shard
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "hot")
	pushFunction(t, tr, dp.Addr(), "cold")

	accept := func(fn string, tag byte) {
		req := proto.InvokeRequest{Function: fn, Async: true, Payload: []byte{tag}}
		if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	// Park the dispatch loop on one hot task (no endpoints yet), then
	// pile up the burst behind it so dispatch order is decided by DRR,
	// not by arrival timing.
	accept("hot", 'h')
	deadline := time.Now().Add(5 * time.Second)
	for dp.asyncShards[0].pending() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 39; i++ {
		accept("hot", 'h')
	}
	accept("cold", 'c')
	accept("cold", 'c')

	pushEndpoints(t, tr, dp.Addr(), "hot", []core.SandboxID{1}, "w1:9000")
	pushEndpoints(t, tr, dp.Addr(), "cold", []core.SandboxID{2}, "w1:9000")
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if dp.metrics.Counter("async_completed").Value() >= 42 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) < 42 {
		t.Fatalf("completed %d of 42 tasks", len(order))
	}
	// The parked first task plus at most one quantum of hot tasks may
	// precede the cold pair; a FIFO queue would have put them at 41-42.
	for i, tag := range order {
		if tag == 'c' {
			if i > 1+asyncDRRQuantum+1 {
				t.Fatalf("first cold task dispatched at position %d (head-of-line blocked): %q", i+1, order)
			}
			return
		}
	}
	t.Fatalf("cold tasks never dispatched: %q", order)
}

// TestAsyncRecoverBacklogLargerThanShardDrains covers the
// recover-overflow fix: a crash backlog bigger than the shard buffer
// must drain completely via blocking admission instead of dropping the
// overflow on the floor until the next restart.
func TestAsyncRecoverBacklogLargerThanShardDrains(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	db := store.NewMemory()
	backlog := seedAsyncQueueCap + 500
	for i := 0; i < backlog; i++ {
		key := core.AsyncTaskKey(1, uint64(i+1))
		db.HSet(asyncQueueHash, key, marshalAsyncTask(asyncTask{function: "f", payload: []byte{byte(i)}}))
	}

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   2 * time.Second,
		AsyncRetries:   10,
		AsyncStore:     db,
		AsyncShards:    1, // one shard: the backlog exceeds its buffer
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if db.HLen(asyncQueueHash) == 0 {
			if got := dp.metrics.Counter("async_recovered").Value(); got != int64(backlog) {
				t.Fatalf("recovered = %d, want %d", got, backlog)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("backlog stranded: %d records left, recovered=%d completed=%d",
		db.HLen(asyncQueueHash),
		dp.metrics.Counter("async_recovered").Value(),
		dp.metrics.Counter("async_completed").Value())
}

// TestConcurrentLeaseDrainAndAccepts races a lease drain (granted,
// revoked, re-granted at a higher epoch) against live client accepts on
// the same replica, then requires every record — leased and own — to
// settle. Runs under -race in CI.
func TestConcurrentLeaseDrainAndAccepts(t *testing.T) {
	tr := transport.NewInProc()
	startFakeCP(t, tr, "cp")
	startSandboxHost(t, tr, "w1:9000", 0)
	db := store.NewMemory()
	seedOwnedTasks(t, db, asyncQueueHash, 2, "f", 200)

	dp := New(Config{
		ID:             1,
		Addr:           "dp0:8000",
		Transport:      tr,
		ControlPlanes:  []string{"cp"},
		MetricInterval: time.Hour,
		QueueTimeout:   2 * time.Second,
		AsyncRetries:   100,
		AsyncStore:     db,
	})
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	pushFunction(t, tr, dp.Addr(), "f")
	pushEndpoints(t, tr, dp.Addr(), "f", []core.SandboxID{1}, "w1:9000")

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			req := proto.InvokeRequest{Function: "f", Async: true, Payload: []byte(fmt.Sprintf("live-%d", i))}
			if _, err := tr.Call(context.Background(), dp.Addr(), proto.MethodInvoke, req.Marshal()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		grantLease(t, tr, dp.Addr(), 2, 1, []string{asyncQueueHash})
		time.Sleep(time.Millisecond)
		revokeLease(t, tr, dp.Addr(), 2, 2)
		time.Sleep(time.Millisecond)
		// Re-lease at a higher epoch (the sweep re-issuing after the
		// aborted takeover); tasks dropped under the revoked lease are
		// re-drained here.
		grantLease(t, tr, dp.Addr(), 2, 3, []string{asyncQueueHash})
	}()
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if AsyncBacklog(db) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("records stranded after concurrent lease churn: backlog=%d drained=%d dropped=%d completed=%d",
		AsyncBacklog(db),
		dp.metrics.Counter("async_lease_drained").Value(),
		dp.metrics.Counter("async_lease_dropped").Value(),
		dp.metrics.Counter("async_completed").Value())
}
