// Package dataplane implements Dirigent's monolithic data plane (paper
// §3.1–3.3). One process performs everything Knative spreads across the
// activator, per-pod queue-proxy sidecars, and the ingress gateway:
//
//   - reverse proxying of invocations to worker nodes,
//   - per-function request queues that buffer cold-start invocations until
//     a sandbox becomes available,
//   - concurrency throttling, limiting the requests each sandbox processes
//     in parallel,
//   - load balancing across a function's ready sandboxes,
//   - periodic reporting of scaling metrics to the control plane, and
//   - an asynchronous invocation queue with at-least-once retry semantics.
//
// Buffering requests in the data plane instead of per-sandbox sidecars is
// what removes sidecar creation from the cold-start critical path
// (paper §5.2.1, "Cold start latency breakdown").
package dataplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Config parameterizes a data plane replica.
type Config struct {
	// ID identifies this replica.
	ID core.DataPlaneID
	// Addr is the replica's RPC address.
	Addr string
	// Transport carries RPCs.
	Transport transport.Transport
	// ControlPlanes lists the CP replica addresses.
	ControlPlanes []string
	// Clock abstracts time.
	Clock clock.Clock
	// Balancer picks sandboxes for invocations; nil selects least-loaded.
	Balancer loadbalancer.Policy
	// MetricInterval is the period of scaling-metric reports to the CP.
	MetricInterval time.Duration
	// QueueTimeout bounds how long a cold-start invocation may wait in
	// the request queue before failing.
	QueueTimeout time.Duration
	// AsyncRetries is the maximum retry count for asynchronous
	// invocations (at-least-once, paper §3.4.2).
	AsyncRetries int
	// AsyncStore, when non-nil, durably persists accepted asynchronous
	// invocations so they survive data plane crashes (the "persistent
	// queue" of paper §3.4.2). Nil keeps the queue in memory only.
	AsyncStore *store.Store
	// Metrics receives data plane telemetry.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.Balancer == nil {
		c.Balancer = loadbalancer.NewLeastLoaded(int64(c.ID) + 1)
	}
	if c.MetricInterval == 0 {
		c.MetricInterval = 250 * time.Millisecond
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 60 * time.Second
	}
	if c.AsyncRetries == 0 {
		c.AsyncRetries = 3
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

type endpointState struct {
	info     proto.SandboxInfo
	inFlight int
	capacity int
}

type pending struct {
	payload    []byte
	enqueuedAt time.Time
	resultCh   chan invokeResult
}

type invokeResult struct {
	body      []byte
	err       error
	dispatch  time.Time
	coldStart bool
}

type functionRuntime struct {
	fn        core.Function
	endpoints map[core.SandboxID]*endpointState
	queue     []*pending
	// epVersion is the version of the last applied endpoint update;
	// broadcasts that arrive out of order are discarded.
	epVersion uint64
}

// DataPlane is one data plane replica.
type DataPlane struct {
	cfg      Config
	clk      clock.Clock
	cp       *cpclient.Client
	metrics  *telemetry.Registry
	listener transport.Listener

	mu        sync.Mutex
	functions map[string]*functionRuntime
	invokeSeq uint64

	asyncCh chan asyncTask

	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped bool
}

type asyncTask struct {
	function string
	payload  []byte
	attempt  int
	// storeKey identifies the durable record for this task ("" when the
	// queue is memory-only).
	storeKey string
}

// New creates a data plane replica; call Start to register and serve.
func New(cfg Config) *DataPlane {
	cfg = cfg.withDefaults()
	return &DataPlane{
		cfg:       cfg,
		clk:       cfg.Clock,
		cp:        cpclient.New(cfg.Transport, cfg.ControlPlanes),
		metrics:   cfg.Metrics,
		functions: make(map[string]*functionRuntime),
		asyncCh:   make(chan asyncTask, 4096),
		stopCh:    make(chan struct{}),
	}
}

// Start listens, registers with the control plane (which pushes function
// and endpoint caches back), and starts the metric and async loops.
func (dp *DataPlane) Start() error {
	ln, err := dp.cfg.Transport.Listen(dp.cfg.Addr, dp.handleRPC)
	if err != nil {
		return fmt.Errorf("data plane %d: %w", dp.cfg.ID, err)
	}
	dp.listener = ln
	req := proto.RegisterDataPlaneRequest{DataPlane: dp.identity()}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := dp.cp.Call(ctx, proto.MethodRegisterDataPlane, req.Marshal()); err != nil {
		ln.Close()
		return fmt.Errorf("data plane %d: register: %w", dp.cfg.ID, err)
	}
	// Re-enqueue async invocations that survived a crash of a previous
	// incarnation of this replica before serving new ones.
	dp.recoverAsync()
	dp.wg.Add(2)
	go dp.metricLoop()
	go dp.asyncLoop()
	return nil
}

func (dp *DataPlane) identity() core.DataPlane {
	ip, port := splitAddr(dp.cfg.Addr)
	return core.DataPlane{ID: dp.cfg.ID, IP: ip, Port: port}
}

func splitAddr(addr string) (string, uint16) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			var port uint16
			for _, c := range addr[i+1:] {
				if c < '0' || c > '9' {
					return addr, 0
				}
				port = port*10 + uint16(c-'0')
			}
			return addr[:i], port
		}
	}
	return addr, 0
}

// Stop simulates a data plane crash: in-flight requests fail as their
// client connections are severed (paper §3.4.2).
func (dp *DataPlane) Stop() {
	dp.mu.Lock()
	if dp.stopped {
		dp.mu.Unlock()
		return
	}
	dp.stopped = true
	// Fail everything queued.
	for _, fr := range dp.functions {
		for _, p := range fr.queue {
			p.resultCh <- invokeResult{err: errors.New("data plane: shutting down")}
		}
		fr.queue = nil
	}
	dp.mu.Unlock()
	close(dp.stopCh)
	if dp.listener != nil {
		dp.listener.Close()
	}
	dp.wg.Wait()
}

// Addr returns the replica's RPC address.
func (dp *DataPlane) Addr() string { return dp.cfg.Addr }

// ID returns the replica's identity.
func (dp *DataPlane) ID() core.DataPlaneID { return dp.cfg.ID }

func (dp *DataPlane) handleRPC(method string, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodInvoke:
		return dp.handleInvoke(payload)
	case proto.MethodAddFunction:
		return dp.handleAddFunctions(payload)
	case proto.MethodRemoveFunction:
		return dp.handleRemoveFunction(payload)
	case proto.MethodUpdateEndpoints:
		return dp.handleUpdateEndpoints(payload)
	default:
		return nil, fmt.Errorf("data plane: unknown method %q", method)
	}
}

// handleAddFunctions replaces/extends the function cache (CP pushes the
// full list; the update is idempotent).
func (dp *DataPlane) handleAddFunctions(payload []byte) ([]byte, error) {
	list, err := proto.UnmarshalFunctionList(payload)
	if err != nil {
		return nil, err
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	seen := make(map[string]bool, len(list.Functions))
	for _, f := range list.Functions {
		seen[f.Name] = true
		fr, ok := dp.functions[f.Name]
		if !ok {
			dp.functions[f.Name] = &functionRuntime{
				fn:        f,
				endpoints: make(map[core.SandboxID]*endpointState),
			}
		} else {
			fr.fn = f
		}
	}
	// Drop functions no longer registered.
	for name, fr := range dp.functions {
		if !seen[name] {
			for _, p := range fr.queue {
				p.resultCh <- invokeResult{err: fmt.Errorf("function %q deregistered", name)}
			}
			delete(dp.functions, name)
		}
	}
	return nil, nil
}

func (dp *DataPlane) handleRemoveFunction(payload []byte) ([]byte, error) {
	f, err := core.UnmarshalFunction(payload)
	if err != nil {
		return nil, err
	}
	dp.mu.Lock()
	fr := dp.functions[f.Name]
	delete(dp.functions, f.Name)
	dp.mu.Unlock()
	if fr != nil {
		for _, p := range fr.queue {
			p.resultCh <- invokeResult{err: fmt.Errorf("function %q deregistered", f.Name)}
		}
	}
	return nil, nil
}

// handleUpdateEndpoints reconciles a function's endpoint cache with the
// control plane's broadcast, then pumps the request queue: newly added
// sandboxes immediately absorb buffered cold-start invocations.
func (dp *DataPlane) handleUpdateEndpoints(payload []byte) ([]byte, error) {
	update, err := proto.UnmarshalEndpointUpdate(payload)
	if err != nil {
		return nil, err
	}
	dp.mu.Lock()
	fr, ok := dp.functions[update.Function]
	if !ok {
		// Endpoint update racing function registration: create a shell
		// entry; the function push will fill in the spec.
		fr = &functionRuntime{
			fn:        core.Function{Name: update.Function},
			endpoints: make(map[core.SandboxID]*endpointState),
		}
		dp.functions[update.Function] = fr
	}
	// Broadcasts travel on independent goroutines and can reorder; an
	// older full-list update must not regress a newer cache.
	if update.Version != 0 && update.Version <= fr.epVersion {
		dp.mu.Unlock()
		dp.metrics.Counter("endpoint_updates_stale").Inc()
		return nil, nil
	}
	fr.epVersion = update.Version
	next := make(map[core.SandboxID]*endpointState, len(update.Endpoints))
	for _, info := range update.Endpoints {
		if prev, ok := fr.endpoints[info.ID]; ok {
			prev.info = info
			next[info.ID] = prev
		} else {
			next[info.ID] = &endpointState{
				info:     info,
				capacity: sandboxCapacity(&fr.fn),
			}
		}
	}
	fr.endpoints = next
	dispatches := dp.pumpLocked(fr)
	dp.mu.Unlock()
	for _, d := range dispatches {
		go dp.dispatch(d.function, d.info, d.p)
	}
	return nil, nil
}

// sandboxCapacity is the per-sandbox concurrency limit. The paper's
// evaluation configures sandboxes to process one request at a time,
// matching commercial FaaS defaults (§5.1).
func sandboxCapacity(fn *core.Function) int {
	if fn.Scaling.TargetConcurrency >= 2 {
		return int(fn.Scaling.TargetConcurrency)
	}
	return 1
}
