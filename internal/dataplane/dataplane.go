// Package dataplane implements Dirigent's monolithic data plane (paper
// §3.1–3.3). One process performs everything Knative spreads across the
// activator, per-pod queue-proxy sidecars, and the ingress gateway:
//
//   - reverse proxying of invocations to worker nodes,
//   - per-function request queues that buffer cold-start invocations until
//     a sandbox becomes available,
//   - concurrency throttling, limiting the requests each sandbox processes
//     in parallel,
//   - load balancing across a function's ready sandboxes,
//   - periodic reporting of scaling metrics to the control plane, and
//   - an asynchronous invocation queue with at-least-once retry semantics.
//
// Buffering requests in the data plane instead of per-sandbox sidecars is
// what removes sidecar creation from the cold-start critical path
// (paper §5.2.1, "Cold start latency breakdown").
//
// The request path is sharded, not globally locked: functions resolve
// through a striped copy-on-write registry, each function's cold-start
// queue sits behind its own mutex, and warm starts pick from an immutable
// per-function endpoint snapshot with CAS-based concurrency slots — no
// lock and no allocation on the steady-state warm path. InvokeShards=1
// restores the seed's single global invoke lock for ablation.
package dataplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirigent/internal/clock"
	"dirigent/internal/core"
	"dirigent/internal/cpclient"
	"dirigent/internal/loadbalancer"
	"dirigent/internal/proto"
	"dirigent/internal/store"
	"dirigent/internal/telemetry"
	"dirigent/internal/transport"
)

// Config parameterizes a data plane replica.
type Config struct {
	// ID identifies this replica.
	ID core.DataPlaneID
	// Addr is the replica's RPC address.
	Addr string
	// Transport carries RPCs.
	Transport transport.Transport
	// ControlPlanes lists the CP replica addresses.
	ControlPlanes []string
	// Clock abstracts time.
	Clock clock.Clock
	// Balancer picks sandboxes for invocations; nil selects least-loaded.
	Balancer loadbalancer.Policy
	// MetricInterval is the period of scaling-metric reports to the CP.
	MetricInterval time.Duration
	// HeartbeatInterval is the period of DP → CP liveness heartbeats;
	// the control plane prunes replicas whose heartbeats stop from its
	// broadcast fan-out set and from the live set the front end polls.
	HeartbeatInterval time.Duration
	// QueueTimeout bounds how long a cold-start invocation may wait in
	// the request queue before failing.
	QueueTimeout time.Duration
	// AsyncRetries is the maximum retry count for asynchronous
	// invocations (at-least-once, paper §3.4.2).
	AsyncRetries int
	// AsyncStore, when non-nil, durably persists accepted asynchronous
	// invocations so they survive data plane crashes (the "persistent
	// queue" of paper §3.4.2). Nil keeps the queue in memory only.
	AsyncStore *store.Store
	// AsyncShards is the number of stripes in the asynchronous queue:
	// per-shard pending channels keyed by function hash, per-shard
	// dispatch loops, and per-shard store hashes, so async acceptance,
	// dispatch, persistence and crash replay scale with the shard count.
	// 0 selects the default (32). 1 is the seed single-queue ablation:
	// one channel, one dispatch loop, and the seed's exact store hash
	// (mirroring -invoke-shards 1 on the sync path).
	AsyncShards int
	// AsyncFnQuota caps how many pending async tasks a single function
	// may hold per queue shard at admission time (client accepts only —
	// recovery, lease drains and retries bypass it, since those tasks
	// were already acknowledged). 0 disables the quota, preserving the
	// seed's capacity-only admission.
	AsyncFnQuota int
	// InvokeShards is the number of stripes in the function registry.
	// 0 selects the default (32). 1 is the global-lock ablation: every
	// function shares one invoke mutex and warm-start picks rebuild the
	// candidate slice under it, reproducing the seed data plane
	// (mirroring the control plane's -state-shards 1).
	InvokeShards int
	// Metrics receives data plane telemetry.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.Balancer == nil {
		c.Balancer = loadbalancer.NewLeastLoaded(int64(c.ID) + 1)
	}
	if c.MetricInterval == 0 {
		c.MetricInterval = 250 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 60 * time.Second
	}
	if c.AsyncRetries == 0 {
		c.AsyncRetries = 3
	}
	if c.InvokeShards <= 0 {
		c.InvokeShards = defaultInvokeShards
	}
	if c.AsyncShards <= 0 {
		c.AsyncShards = defaultAsyncShards
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

// endpointState is one cached ready sandbox. info and capacity are
// guarded by the owning runtime's mu and copied into snapshots on
// rebuild; inFlight is shared with every snapshot referencing this
// endpoint and is mutated CAS-style by the concurrency throttler.
type endpointState struct {
	info     proto.SandboxInfo
	capacity int
	inFlight atomic.Int64
}

type pending struct {
	payload    []byte
	enqueuedAt time.Time
	resultCh   chan invokeResult
}

type invokeResult struct {
	body      []byte
	err       error
	dispatch  time.Time
	coldStart bool
}

// functionRuntime is one function's slice of the data plane. The mutex
// guards only this function's queue and endpoint table (it is the shared
// global mutex in the InvokeShards=1 ablation); the warm-start path reads
// the published snapshot and the atomic counters without taking it.
type functionRuntime struct {
	name string
	mu   *sync.Mutex

	// Guarded by mu:
	fn        core.Function
	endpoints map[core.SandboxID]*endpointState
	queue     []*pending
	// epVersion is the version of the last applied endpoint update;
	// broadcasts that arrive out of order are discarded.
	epVersion uint64
	// dead marks a runtime unpublished from the registry; stragglers
	// holding a stale pointer must not enqueue into it.
	dead bool

	// Lock-free:
	queued atomic.Int32 // len(queue) mirror, read by slot release
	snap   atomic.Pointer[endpointSnapshot]
}

// DataPlane is one data plane replica.
type DataPlane struct {
	cfg      Config
	clk      clock.Clock
	cp       *cpclient.Client
	metrics  *telemetry.Registry
	listener transport.Listener

	shards []*invokeShard
	// snapshotPicks is false in the -invoke-shards 1 ablation: warm
	// picks take the (global) runtime lock and rebuild the candidate
	// slice per invocation, as the seed did.
	snapshotPicks bool
	// globalMu, when non-nil, is the mutex every runtime shares in the
	// ablation.
	globalMu *sync.Mutex
	// snapPolicy is the balancer's allocation-free fast path, nil when
	// the policy only implements Pick.
	snapPolicy loadbalancer.SnapshotPolicy

	invokeSeq atomic.Uint64

	// Hot-path telemetry, resolved once so the warm path never touches
	// the registry mutex.
	mInvocations     *telemetry.Counter
	mWarmStarts      *telemetry.Counter
	mColdStarts      *telemetry.Counter
	mInvokeErrors    *telemetry.Counter
	mStaleDropped    *telemetry.Counter
	mPickRaces       *telemetry.Counter
	mInvokeWait      *telemetry.Histogram
	mInvokeContended *telemetry.Counter

	// asyncShards stripes the asynchronous queue (see asyncqueue.go).
	asyncShards []*asyncShard

	// queueEpoch is the async queue epoch the CP assigned this replica
	// (registration/heartbeat acks); settles of own records are fenced
	// by it. leases/leasedKeys track records this replica drains on
	// behalf of dead owners; parked holds own-record settles rejected by
	// a newer fence, retried after the next epoch adoption (see
	// asynclease.go).
	queueEpoch atomic.Uint64
	leaseMu    sync.Mutex
	leases     map[core.DataPlaneID]*heldLease
	leasedKeys map[string]bool
	parkMu     sync.Mutex
	parked     []parkedSettle

	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped atomic.Bool
}

type asyncTask struct {
	function string
	payload  []byte
	attempt  int
	// storeKey/storeHash locate the durable record for this task ("" when
	// the queue is memory-only). The hash is carried per task so a record
	// recovered from another configuration's shard hash (or the seed's
	// unsharded hash) still settles where it was persisted.
	storeKey  string
	storeHash string
	// leased marks a task drained on behalf of a dead owner under an
	// epoch-numbered lease; its settle is fenced by leaseEpoch against
	// the owner's fence instead of this replica's own epoch.
	leased     bool
	leaseOwner core.DataPlaneID
	leaseEpoch uint64
}

// New creates a data plane replica; call Start to register and serve.
func New(cfg Config) *DataPlane {
	cfg = cfg.withDefaults()
	dp := &DataPlane{
		cfg:           cfg,
		clk:           cfg.Clock,
		cp:            cpclient.New(cfg.Transport, cfg.ControlPlanes),
		metrics:       cfg.Metrics,
		shards:        newInvokeShards(cfg.InvokeShards),
		snapshotPicks: cfg.InvokeShards > 1,
		asyncShards:   newAsyncShards(cfg.AsyncShards, cfg.AsyncFnQuota),
		leases:        make(map[core.DataPlaneID]*heldLease),
		leasedKeys:    make(map[string]bool),
		stopCh:        make(chan struct{}),
	}
	if !dp.snapshotPicks {
		dp.globalMu = new(sync.Mutex)
	}
	dp.snapPolicy, _ = cfg.Balancer.(loadbalancer.SnapshotPolicy)
	dp.mInvocations = dp.metrics.Counter("invocations")
	dp.mWarmStarts = dp.metrics.Counter("warm_starts")
	dp.mColdStarts = dp.metrics.Counter("cold_starts")
	dp.mInvokeErrors = dp.metrics.Counter("invocation_errors")
	dp.mStaleDropped = dp.metrics.Counter("stale_endpoints_dropped")
	dp.mPickRaces = dp.metrics.Counter("warm_pick_races")
	dp.mInvokeWait = dp.metrics.Histogram("invoke_lock_wait_ms")
	dp.mInvokeContended = dp.metrics.Counter("invoke_lock_contended")
	return dp
}

// newRuntime builds an empty runtime shell for name. Registry insertion
// is the caller's job (getOrCreate).
func (dp *DataPlane) newRuntime(name string) *functionRuntime {
	fr := &functionRuntime{
		name:      name,
		mu:        dp.globalMu,
		fn:        core.Function{Name: name},
		endpoints: make(map[core.SandboxID]*endpointState),
	}
	if fr.mu == nil {
		fr.mu = new(sync.Mutex)
	}
	fr.snap.Store(emptySnapshot)
	return fr
}

// Start listens, registers with the control plane (which pushes function
// and endpoint caches back), and starts the metric, recovery, and async
// dispatch loops.
func (dp *DataPlane) Start() error {
	// Raise the store-key high-water mark past every durable record
	// before the listener opens: a new acceptance racing ahead of this
	// could mint a colliding key and overwrite an acknowledged task's
	// only durable record. The replay itself runs in the background
	// (recoverAsync) once dispatch loops exist to apply backpressure.
	dp.observeAsyncKeys()
	ln, err := dp.cfg.Transport.Listen(dp.cfg.Addr, dp.handleRPC)
	if err != nil {
		return fmt.Errorf("data plane %d: %w", dp.cfg.ID, err)
	}
	dp.listener = ln
	// A ":0" listen address means the transport picked the port: adopt
	// it so the identity the CP records (and hands to the front end's
	// membership poll) routes back here.
	if _, port := splitAddr(dp.cfg.Addr); port == 0 {
		dp.cfg.Addr = ln.Addr()
	}
	req := proto.RegisterDataPlaneRequest{
		DataPlane:   dp.identity(),
		Durable:     dp.cfg.AsyncStore != nil,
		AsyncHashes: dp.asyncStoreHashes(),
	}
	// Registration rides out control-plane leader elections and brief
	// outages with capped backoff instead of failing the replica's start:
	// "no leader right now" is transient in an HA control plane.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	resp, err := dp.cp.CallWithRetry(ctx, proto.MethodRegisterDataPlane, req.Marshal())
	if err != nil {
		ln.Close()
		return fmt.Errorf("data plane %d: register: %w", dp.cfg.ID, err)
	}
	// The registration ack assigns this incarnation's queue epoch,
	// fencing out any lessee still draining records from a previous
	// incarnation (asynclease.go).
	dp.adoptEpochAck(resp)
	dp.wg.Add(3 + len(dp.asyncShards))
	go dp.metricLoop()
	go dp.heartbeatLoop()
	go dp.recoverAsync()
	for _, sh := range dp.asyncShards {
		go dp.asyncLoop(sh)
	}
	return nil
}

func (dp *DataPlane) identity() core.DataPlane {
	ip, port := splitAddr(dp.cfg.Addr)
	return core.DataPlane{ID: dp.cfg.ID, IP: ip, Port: port}
}

func splitAddr(addr string) (string, uint16) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			var port uint16
			for _, c := range addr[i+1:] {
				if c < '0' || c > '9' {
					return addr, 0
				}
				port = port*10 + uint16(c-'0')
			}
			return addr[:i], port
		}
	}
	return addr, 0
}

// Stop simulates a data plane crash: in-flight requests fail as their
// client connections are severed (paper §3.4.2).
func (dp *DataPlane) Stop() {
	if !dp.stopped.CompareAndSwap(false, true) {
		return
	}
	// Fail everything queued.
	for _, sh := range dp.shards {
		for _, fr := range sh.fns.load() {
			dp.lockRuntime(fr)
			queue := fr.queue
			fr.queue = nil
			fr.queued.Store(0)
			fr.mu.Unlock()
			for _, p := range queue {
				p.resultCh <- invokeResult{err: errors.New("data plane: shutting down")}
			}
		}
	}
	close(dp.stopCh)
	for _, sh := range dp.asyncShards {
		sh.stop()
	}
	if dp.listener != nil {
		dp.listener.Close()
	}
	dp.wg.Wait()
}

// Addr returns the replica's RPC address.
func (dp *DataPlane) Addr() string { return dp.cfg.Addr }

// ID returns the replica's identity.
func (dp *DataPlane) ID() core.DataPlaneID { return dp.cfg.ID }

// Metrics returns the replica's telemetry registry (invoke-lock
// contention, warm/cold starts, snapshot rebuilds, async counters).
func (dp *DataPlane) Metrics() *telemetry.Registry { return dp.metrics }

func (dp *DataPlane) handleRPC(method string, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodInvoke:
		return dp.handleInvoke(payload)
	case proto.MethodAddFunction:
		return dp.handleAddFunctions(payload)
	case proto.MethodRemoveFunction:
		return dp.handleRemoveFunction(payload)
	case proto.MethodUpdateEndpoints:
		return dp.handleUpdateEndpoints(payload)
	case proto.MethodUpdateEndpointsBatch:
		return dp.handleUpdateEndpointsBatch(payload)
	case proto.MethodAsyncLeaseGrant:
		return dp.handleAsyncLeaseGrant(payload)
	case proto.MethodAsyncLeaseRevoke:
		return dp.handleAsyncLeaseRevoke(payload)
	default:
		return nil, fmt.Errorf("data plane: unknown method %q", method)
	}
}

func deregisteredErr(name string) error {
	return fmt.Errorf("function %q deregistered", name)
}

// handleAddFunctions replaces/extends the function cache (CP pushes the
// full list; the update is idempotent). Updated specs propagate to the
// per-endpoint concurrency capacities, so a raised TargetConcurrency
// takes effect on live endpoints instead of waiting for them to churn.
func (dp *DataPlane) handleAddFunctions(payload []byte) ([]byte, error) {
	list, err := proto.UnmarshalFunctionList(payload)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(list.Functions))
	for _, f := range list.Functions {
		seen[f.Name] = true
		fr := dp.lockLive(f.Name)
		if fr == nil {
			continue
		}
		fr.fn = f
		capacity := sandboxCapacity(&f)
		changed := false
		for _, st := range fr.endpoints {
			if st.capacity != capacity {
				st.capacity = capacity
				changed = true
			}
		}
		var work []dispatchWork
		if changed {
			dp.rebuildSnapshotLocked(fr)
			// A raised capacity may free slots for buffered requests.
			work = dp.pumpLocked(fr)
		}
		fr.mu.Unlock()
		dp.runDispatches(work)
	}
	// Drop functions no longer registered.
	for _, sh := range dp.shards {
		for name := range sh.fns.load() {
			if !seen[name] {
				dp.removeFunction(name)
			}
		}
	}
	return nil, nil
}

func (dp *DataPlane) handleRemoveFunction(payload []byte) ([]byte, error) {
	f, err := core.UnmarshalFunction(payload)
	if err != nil {
		return nil, err
	}
	dp.removeFunction(f.Name)
	return nil, nil
}

// handleUpdateEndpoints reconciles a function's endpoint cache with the
// control plane's broadcast, republishes the pick snapshot, then pumps
// the request queue: newly added sandboxes immediately absorb buffered
// cold-start invocations.
func (dp *DataPlane) handleUpdateEndpoints(payload []byte) ([]byte, error) {
	update, err := proto.UnmarshalEndpointUpdate(payload)
	if err != nil {
		return nil, err
	}
	dp.applyEndpointUpdate(update)
	return nil, nil
}

// handleUpdateEndpointsBatch applies one coalesced CP sweep: the diff of
// every function whose endpoints changed, in a single RPC. Each inner
// update flows through the same per-function versioned path as a
// singleton broadcast, so batching changes RPC count, not semantics.
func (dp *DataPlane) handleUpdateEndpointsBatch(payload []byte) ([]byte, error) {
	batch, err := proto.UnmarshalEndpointUpdateBatch(payload)
	if err != nil {
		return nil, err
	}
	dp.metrics.Counter("endpoint_update_batches").Inc()
	for i := range batch.Updates {
		dp.applyEndpointUpdate(&batch.Updates[i])
	}
	return nil, nil
}

func (dp *DataPlane) applyEndpointUpdate(update *proto.EndpointUpdate) {
	fr := dp.lockLive(update.Function)
	if fr == nil {
		return
	}
	// Broadcasts travel on independent goroutines and can reorder; an
	// older full-list update must not regress a newer cache.
	if update.Version != 0 && update.Version <= fr.epVersion {
		fr.mu.Unlock()
		dp.metrics.Counter("endpoint_updates_stale").Inc()
		return
	}
	fr.epVersion = update.Version
	next := make(map[core.SandboxID]*endpointState, len(update.Endpoints))
	capacity := sandboxCapacity(&fr.fn)
	for _, info := range update.Endpoints {
		if prev, ok := fr.endpoints[info.ID]; ok {
			prev.info = info
			prev.capacity = capacity
			next[info.ID] = prev
		} else {
			st := &endpointState{info: info, capacity: capacity}
			next[info.ID] = st
		}
	}
	fr.endpoints = next
	dp.rebuildSnapshotLocked(fr)
	work := dp.pumpLocked(fr)
	fr.mu.Unlock()
	dp.runDispatches(work)
}

// sandboxCapacity is the per-sandbox concurrency limit. The paper's
// evaluation configures sandboxes to process one request at a time,
// matching commercial FaaS defaults (§5.1).
func sandboxCapacity(fn *core.Function) int {
	if fn.Scaling.TargetConcurrency >= 2 {
		return int(fn.Scaling.TargetConcurrency)
	}
	return 1
}
