package dataplane

import (
	"fmt"
	"sync/atomic"

	"dirigent/internal/core"
	"dirigent/internal/proto"
)

// Lease failover for the durable async queue (lessee side).
//
// When the control plane's health sweep prunes a replica, it leases that
// replica's durable queue hashes to survivors (proto.AsyncLease). A
// lessee drains the dead owner's records through its ordinary dispatch
// loops, with every settlement fenced by the lease epoch: the store
// rejects a settle whose epoch is older than the owner's fence
// (store.HDelFenced), and fences only ever rise (store.HBumpU64).
//
// The fence is what makes revival safe. A revived owner re-registers and
// is assigned a fresh, strictly higher epoch; adopting it bumps the
// owner's fence past every outstanding lease, so a lessee that keeps
// draining can no longer delete records (its settles return ErrFenced
// and it abandons the lease), and the owner's own recovery re-runs only
// records no lessee managed to settle. Symmetrically, a pruned-but-alive
// "zombie" owner whose records were leased away settles at its stale
// epoch, is fenced, and parks the settle until it adopts its revival
// epoch — it never re-dispatches the task, and the record is deleted
// exactly once. What at-least-once still permits is a task executing on
// both sides of a lease transition before either settles; epochs bound
// the damage to duplicate execution (never duplicate settlement, never a
// stranded record), which is the paper's §3.4.2 contract.

// asyncFenceHash is the store hash holding one settlement fence per
// owner replica (field = owner ID). It is deliberately not an async
// queue hash: recovery and lease drains never scan it.
const asyncFenceHash = "async-lease-fence"

func asyncFenceField(owner core.DataPlaneID) string {
	return fmt.Sprintf("%d", owner)
}

// heldLease is one lease this replica holds on a dead owner's records.
type heldLease struct {
	owner   core.DataPlaneID
	epoch   uint64
	hashes  []string
	revoked atomic.Bool
}

type parkedSettle struct {
	hash, key string
}

// adoptEpoch raises this replica's queue epoch to e (epochs only move
// forward; stale acks are ignored). On a raise with a durable store, the
// replica bumps its own settlement fence — out-fencing any lessee still
// draining its records — and retries settles parked while it was fenced.
func (dp *DataPlane) adoptEpoch(e uint64) {
	for {
		cur := dp.queueEpoch.Load()
		if e <= cur {
			return
		}
		if dp.queueEpoch.CompareAndSwap(cur, e) {
			break
		}
	}
	if st := dp.cfg.AsyncStore; st != nil {
		if err := st.HBumpU64(asyncFenceHash, asyncFenceField(dp.cfg.ID), e); err != nil {
			dp.metrics.Counter("async_fence_errors").Inc()
			return
		}
		dp.retryParkedSettles()
	}
}

// QueueEpoch returns the replica's current async queue epoch.
func (dp *DataPlane) QueueEpoch() uint64 { return dp.queueEpoch.Load() }

// adoptEpochAck parses a CP reply carrying a DataPlaneEpochAck (empty
// replies mean "no epoch assigned" and are ignored).
func (dp *DataPlane) adoptEpochAck(resp []byte) {
	if len(resp) == 0 {
		return
	}
	if ack, err := proto.UnmarshalDataPlaneEpochAck(resp); err == nil && ack.Epoch > 0 {
		dp.adoptEpoch(ack.Epoch)
	}
}

// parkSettle records a fence-rejected own-record settle for retry after
// the replica adopts a newer epoch. The task already executed here, so
// it must not be re-dispatched; the record just cannot be deleted until
// this replica out-fences the lease that was granted while its
// heartbeats were delayed.
func (dp *DataPlane) parkSettle(hash, key string) {
	dp.parkMu.Lock()
	dp.parked = append(dp.parked, parkedSettle{hash: hash, key: key})
	dp.parkMu.Unlock()
	dp.metrics.Counter("async_settle_parked").Inc()
}

// retryParkedSettles re-attempts parked settles at the newly adopted
// epoch (settleAsync re-reads it); still-fenced ones re-park.
func (dp *DataPlane) retryParkedSettles() {
	dp.parkMu.Lock()
	parked := dp.parked
	dp.parked = nil
	dp.parkMu.Unlock()
	for _, p := range parked {
		t := asyncTask{storeHash: p.hash, storeKey: p.key}
		dp.settleAsync(&t)
	}
}

// leasedKeyID dedupes leased records across re-scans of the same hashes
// (a re-granted lease rescans; records already queued must not dispatch
// twice from this replica).
func leasedKeyID(hash, key string) string { return hash + "\x00" + key }

func (dp *DataPlane) markLeasedKey(hash, key string) bool {
	id := leasedKeyID(hash, key)
	dp.leaseMu.Lock()
	defer dp.leaseMu.Unlock()
	if dp.leasedKeys[id] {
		return false
	}
	dp.leasedKeys[id] = true
	return true
}

func (dp *DataPlane) forgetLeasedKey(hash, key string) {
	dp.leaseMu.Lock()
	delete(dp.leasedKeys, leasedKeyID(hash, key))
	dp.leaseMu.Unlock()
}

// abandonLease drops a held lease no newer than epoch: the store fenced
// one of its settles, so a higher epoch (a revival or a re-lease) owns
// the records now.
func (dp *DataPlane) abandonLease(owner core.DataPlaneID, epoch uint64) {
	dp.leaseMu.Lock()
	if l := dp.leases[owner]; l != nil && l.epoch <= epoch {
		l.revoked.Store(true)
		delete(dp.leases, owner)
	}
	dp.leaseMu.Unlock()
}

// leaseCheck validates a queued leased task at dispatch time. A task
// granted at an epoch the lease has since left (revoked, abandoned, or
// re-granted lower) is dropped without executing — its record stays
// durable for whoever owns the epoch now. A re-grant to this same
// replica at a higher epoch upgrades the task in place, so tasks queued
// under the old grant still dispatch (and settle at the new epoch)
// instead of stranding until another scan.
func (dp *DataPlane) leaseCheck(t *asyncTask) bool {
	dp.leaseMu.Lock()
	defer dp.leaseMu.Unlock()
	l := dp.leases[t.leaseOwner]
	if l == nil || l.revoked.Load() || l.epoch < t.leaseEpoch {
		return false
	}
	t.leaseEpoch = l.epoch
	return true
}

// currentLeaseEpoch reports the epoch of the lease this replica holds on
// owner's records, if any.
func (dp *DataPlane) currentLeaseEpoch(owner core.DataPlaneID) (uint64, bool) {
	dp.leaseMu.Lock()
	defer dp.leaseMu.Unlock()
	if l := dp.leases[owner]; l != nil && !l.revoked.Load() {
		return l.epoch, true
	}
	return 0, false
}

// HeldLeases reports how many owners' records this replica is currently
// leasing.
func (dp *DataPlane) HeldLeases() int {
	dp.leaseMu.Lock()
	defer dp.leaseMu.Unlock()
	return len(dp.leases)
}

// handleAsyncLeaseGrant installs a lease on a dead owner's hashes and
// starts draining them. Grants are idempotent per epoch and replace any
// older lease on the same owner. A replica without a durable store (or
// with a private one — nothing to read the dead owner's records from)
// acknowledges but drains nothing, preserving the seed's wait-for-
// restart behavior for that deployment shape.
func (dp *DataPlane) handleAsyncLeaseGrant(payload []byte) ([]byte, error) {
	g, err := proto.UnmarshalAsyncLease(payload)
	if err != nil {
		return nil, err
	}
	if dp.cfg.AsyncStore == nil {
		dp.metrics.Counter("async_lease_nostore").Inc()
		return nil, nil
	}
	if dp.stopped.Load() {
		return nil, nil
	}
	dp.leaseMu.Lock()
	if cur := dp.leases[g.Owner]; cur != nil && cur.epoch >= g.Epoch {
		dp.leaseMu.Unlock()
		return nil, nil // duplicate or stale grant
	}
	l := &heldLease{owner: g.Owner, epoch: g.Epoch, hashes: g.Hashes}
	dp.leases[g.Owner] = l
	dp.leaseMu.Unlock()
	// Raise the owner's fence to the lease epoch before draining: from
	// here on, neither the zombie owner nor an older lessee can settle
	// (and thereby mask) a record this lease is about to own.
	if err := dp.cfg.AsyncStore.HBumpU64(asyncFenceHash, asyncFenceField(g.Owner), g.Epoch); err != nil {
		dp.abandonLease(g.Owner, g.Epoch)
		return nil, err
	}
	dp.metrics.Counter("async_leases_granted").Inc()
	dp.wg.Add(1)
	go dp.drainLease(l)
	return nil, nil
}

// handleAsyncLeaseRevoke retracts leases older than the owner's revival
// epoch. Tasks already queued under the lease are dropped at dispatch by
// leaseCheck; their records stay durable for the revived owner.
func (dp *DataPlane) handleAsyncLeaseRevoke(payload []byte) ([]byte, error) {
	r, err := proto.UnmarshalAsyncLeaseRevoke(payload)
	if err != nil {
		return nil, err
	}
	dp.leaseMu.Lock()
	if l := dp.leases[r.Owner]; l != nil && l.epoch < r.Epoch {
		l.revoked.Store(true)
		delete(dp.leases, r.Owner)
		dp.metrics.Counter("async_leases_revoked").Inc()
	}
	dp.leaseMu.Unlock()
	return nil, nil
}

// drainLease scans the leased hashes for the dead owner's records and
// feeds them to the ordinary dispatch loops with backpressure (blocking
// admit — leased tasks were acknowledged by the dead owner and must
// reach a dispatch loop, not overflow). Dispatch itself re-validates the
// lease, so a revocation mid-drain stops execution even for tasks
// already queued.
func (dp *DataPlane) drainLease(l *heldLease) {
	defer dp.wg.Done()
	st := dp.cfg.AsyncStore
	for _, hash := range l.hashes {
		for key, raw := range st.HGetAll(hash) {
			if l.revoked.Load() || dp.stopped.Load() {
				return
			}
			owner, ok := core.AsyncTaskOwner(key)
			if !ok || owner != l.owner {
				continue
			}
			if !dp.markLeasedKey(hash, key) {
				continue // already queued by an earlier grant
			}
			task, err := unmarshalAsyncTask(raw)
			if err != nil {
				st.HDel(hash, key)
				dp.metrics.Counter("async_recover_corrupt").Inc()
				dp.forgetLeasedKey(hash, key)
				continue
			}
			task.storeKey = key
			task.storeHash = hash
			task.attempt = 0
			task.leased = true
			task.leaseOwner = l.owner
			task.leaseEpoch = l.epoch
			if !dp.asyncShardFor(task.function).admitBlocking(task) {
				dp.forgetLeasedKey(hash, key)
				return
			}
			dp.metrics.Counter("async_lease_drained").Inc()
		}
	}
}
