module dirigent

go 1.24
